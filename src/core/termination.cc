#include "core/termination.h"

#include "core/channel.h"

namespace pdatalog {

TerminationDetector::TerminationDetector(int num_workers)
    : num_workers_(num_workers),
      states_(std::make_unique<WorkerState[]>(num_workers)) {}

TerminationDetector::Snapshot TerminationDetector::Scan() const {
  Snapshot snap;
  snap.all_idle = true;
  for (int w = 0; w < num_workers_; ++w) {
    if (!states_[w].idle.load(std::memory_order_seq_cst)) {
      snap.all_idle = false;
    }
    snap.sent += states_[w].sent.load(std::memory_order_seq_cst);
    snap.received += states_[w].received.load(std::memory_order_seq_cst);
  }
  // Channel emptiness is read after the counters: any message enqueued
  // later was counted as sent by an active worker, so a scan that sees
  // all-idle with empty channels cannot have missed an in-flight frame.
  snap.channels_empty = network_ == nullptr || !network_->AnyPending();
  return snap;
}

bool TerminationDetector::TryDetect() {
  if (terminated()) return true;
  Snapshot first = Scan();
  if (!first.all_idle) return false;
  if (first.sent == first.received) {
    // Second scan: counters are monotone, so identical totals mean no
    // send or receive happened in between, and all workers were idle at
    // both scans. Any message still in a channel would have been
    // counted as sent but not received, making sent > received.
    Snapshot second = Scan();
    if (!second.all_idle || second != first) return false;
    terminated_.store(true, std::memory_order_seq_cst);
    return true;
  }
  if (network_ != nullptr && first.channels_empty) {
    // Unbalanced counters with every worker idle and every channel
    // empty: if that state survives a second scan unchanged, no frame
    // exists that could ever balance the counters — a message was lost
    // (or injected twice). Without this check the run would livelock.
    Snapshot second = Scan();
    if (second.all_idle && second == first) {
      Abort(Status::Internal(
          "channel fault detected: " + std::to_string(first.sent) +
          " messages sent but " + std::to_string(first.received) +
          " received with all workers idle and all channels empty "
          "(enable retransmit to recover from lossy channels)"));
      return true;
    }
  }
  return false;
}

void TerminationDetector::Abort(Status status) {
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (status_.ok() && !status.ok()) status_ = std::move(status);
  }
  terminated_.store(true, std::memory_order_seq_cst);
}

Status TerminationDetector::run_status() const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return status_;
}

Status TerminationDetector::CheckCounterBalance() const {
  uint64_t sent = 0;
  uint64_t received = 0;
  for (int w = 0; w < num_workers_; ++w) {
    sent += states_[w].sent.load(std::memory_order_seq_cst);
    received += states_[w].received.load(std::memory_order_seq_cst);
  }
  if (sent == received) return Status::Ok();
  return Status::Internal(
      "channel fault detected: " + std::to_string(sent) +
      " messages sent but " + std::to_string(received) +
      " received at quiescence (enable retransmit to recover from "
      "lossy channels)");
}

}  // namespace pdatalog
