#include "core/termination.h"

namespace pdatalog {

TerminationDetector::TerminationDetector(int num_workers)
    : num_workers_(num_workers),
      states_(std::make_unique<WorkerState[]>(num_workers)) {}

TerminationDetector::Snapshot TerminationDetector::Scan() const {
  Snapshot snap;
  snap.all_idle = true;
  for (int w = 0; w < num_workers_; ++w) {
    if (!states_[w].idle.load(std::memory_order_seq_cst)) {
      snap.all_idle = false;
    }
    snap.sent += states_[w].sent.load(std::memory_order_seq_cst);
    snap.received += states_[w].received.load(std::memory_order_seq_cst);
  }
  return snap;
}

bool TerminationDetector::TryDetect() {
  if (terminated()) return true;
  Snapshot first = Scan();
  if (!first.all_idle || first.sent != first.received) return false;
  // Second scan: counters are monotone, so identical totals mean no send
  // or receive happened in between, and all workers were idle at both
  // scans. Any message still in a channel would have been counted as
  // sent but not received, making sent > received.
  Snapshot second = Scan();
  if (!second.all_idle || second != first) return false;
  terminated_.store(true, std::memory_order_seq_cst);
  return true;
}

}  // namespace pdatalog
