#include "core/rewrite.h"

#include <algorithm>
#include <cassert>

namespace pdatalog {

namespace {

// Internal per-rule rewriting parameters shared by all three schemes.
struct RuleSpecInternal {
  std::vector<Symbol> vars;
  Symbol label = kInvalidSymbol;
  // Registry id of the rule's constraint function (and of the Q/T-scheme
  // send function). -1 when the rule is not constrained.
  int function = -1;
  bool constrain = false;
  // Send functions: size 1 (shared by all processors) or size P
  // (per-processor, R scheme). Empty = no sends from this rule.
  std::vector<int> send_functions;
};

std::vector<Symbol> BodyVariables(const Rule& rule) {
  std::vector<Symbol> vars;
  for (const Atom& atom : rule.body) CollectVariables(atom, &vars);
  return vars;
}

bool Occurs(const std::vector<Symbol>& haystack, Symbol needle) {
  return std::find(haystack.begin(), haystack.end(), needle) !=
         haystack.end();
}

// First column of `atom` holding variable `v`, or -1.
int FirstPosition(const Atom& atom, Symbol v) {
  for (int c = 0; c < atom.arity(); ++c) {
    if (atom.args[c].is_var() && atom.args[c].sym == v) return c;
  }
  return -1;
}

// Interns a decorated predicate name not colliding with program
// predicates.
Symbol DecoratedName(SymbolTable* symbols, const ProgramInfo& info,
                     const std::string& base) {
  std::string candidate = base;
  while (true) {
    Symbol sym = symbols->Intern(candidate);
    if (info.arity.find(sym) == info.arity.end()) return sym;
    candidate += "_";
  }
}

StatusOr<RewriteBundle> BuildBundle(
    const Program& program, const ProgramInfo& info, int num_processors,
    const std::vector<RuleSpecInternal>& specs,
    std::shared_ptr<DiscriminatingRegistry> registry, bool fragment_bases,
    bool non_redundant) {
  if (num_processors < 1) {
    return Status::InvalidArgument("num_processors must be >= 1");
  }
  if (specs.size() != program.rules.size()) {
    return Status::Internal("one rule spec required per rule");
  }

  RewriteBundle bundle;
  bundle.num_processors = num_processors;
  bundle.registry = std::move(registry);
  bundle.arity = info.arity;
  bundle.non_redundant = non_redundant;

  for (Symbol p : info.predicates) {
    if (!info.IsDerived(p)) continue;
    bundle.derived.push_back(p);
    const std::string& name = program.symbols->Name(p);
    bundle.out_name[p] = DecoratedName(program.symbols, info, name + "_out");
    bundle.in_name[p] = DecoratedName(program.symbols, info, name + "_in");
  }

  // Validate discriminating sequences: constraint variables must occur
  // in the rule body (Section 3's evaluability requirement).
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const RuleSpecInternal& spec = specs[r];
    if (!spec.constrain && spec.send_functions.empty()) continue;
    if (spec.vars.size() > 32) {
      return Status::InvalidArgument(
          "discriminating sequence exceeds 32 variables");
    }
    std::vector<Symbol> body_vars = BodyVariables(program.rules[r]);
    for (Symbol v : spec.vars) {
      if (!Occurs(body_vars, v)) {
        return Status::InvalidArgument(
            "discriminating variable '" + program.symbols->Name(v) +
            "' does not occur in the body of rule " + std::to_string(r));
      }
    }
  }

  // Local programs (identical across processors except for constraint
  // targets).
  for (int i = 0; i < num_processors; ++i) {
    Program local;
    local.symbols = program.symbols;
    for (size_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      const RuleSpecInternal& spec = specs[r];
      Rule lr;
      lr.head = rule.head;
      lr.head.predicate = bundle.out_name.at(rule.head.predicate);
      for (const Atom& atom : rule.body) {
        Atom la = atom;
        if (info.IsDerived(atom.predicate)) {
          la.predicate = bundle.in_name.at(atom.predicate);
        }
        lr.body.push_back(std::move(la));
      }
      if (spec.constrain && !spec.vars.empty()) {
        HashConstraint c;
        c.function = spec.function;
        c.label = spec.label;
        c.vars = spec.vars;
        c.target = i;
        lr.constraints.push_back(std::move(c));
      }
      local.rules.push_back(std::move(lr));
    }
    bundle.per_processor.push_back(std::move(local));
  }

  // Send specs: one per (rule, recursive body atom).
  bundle.sends.resize(num_processors);
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    const RuleSpecInternal& spec = specs[r];
    if (spec.send_functions.empty()) continue;
    for (const Atom& atom : rule.body) {
      if (!info.IsDerived(atom.predicate)) continue;
      SendSpec send;
      send.predicate = atom.predicate;
      send.pattern = atom;
      send.vars = spec.vars;
      send.determined = true;
      for (Symbol v : spec.vars) {
        int pos = FirstPosition(atom, v);
        send.var_positions.push_back(pos);
        if (pos < 0) send.determined = false;
      }
      for (int i = 0; i < num_processors; ++i) {
        SendSpec copy = send;
        copy.function = spec.send_functions.size() == 1
                            ? spec.send_functions[0]
                            : spec.send_functions[i];
        bundle.sends[i].push_back(std::move(copy));
      }
    }
  }

  // Base-atom access decisions (same for all processors; the fragment
  // contents differ per processor, built by the partitioner).
  for (size_t r = 0; r < program.rules.size(); ++r) {
    const Rule& rule = program.rules[r];
    const RuleSpecInternal& spec = specs[r];
    for (size_t b = 0; b < rule.body.size(); ++b) {
      const Atom& atom = rule.body[b];
      if (info.IsDerived(atom.predicate)) continue;
      BaseOccurrence occ;
      occ.rule_index = static_cast<int>(r);
      occ.body_index = static_cast<int>(b);
      occ.access = BaseOccurrence::Access::kReplicated;
      if (fragment_bases && spec.constrain && !spec.vars.empty()) {
        std::vector<int> positions;
        bool all_present = true;
        for (Symbol v : spec.vars) {
          int pos = FirstPosition(atom, v);
          if (pos < 0) {
            all_present = false;
            break;
          }
          positions.push_back(pos);
        }
        if (all_present) {
          occ.access = BaseOccurrence::Access::kFragment;
          occ.function = spec.function;
          occ.positions = std::move(positions);
        }
      }
      bundle.base_occurrences.push_back(std::move(occ));
    }
  }

  return bundle;
}

}  // namespace

StatusOr<RewriteBundle> RewriteLinearSirup(
    const Program& program, const ProgramInfo& info, const LinearSirup& sirup,
    int num_processors, const LinearSchemeOptions& options) {
  auto registry = std::make_shared<DiscriminatingRegistry>();
  int h = registry->Register(options.h);
  int h_prime =
      options.h_prime ? registry->Register(*options.h_prime) : h;

  Symbol h_label = program.symbols->Intern("h");
  Symbol hp_label = program.symbols->Intern("h'");

  std::vector<RuleSpecInternal> specs(program.rules.size());
  for (size_t r = 0; r < program.rules.size(); ++r) {
    RuleSpecInternal& spec = specs[r];
    if (program.rules[r] == sirup.exit) {
      spec.vars = options.v_e;
      spec.label = hp_label;
      spec.function = h_prime;
      spec.constrain = true;
      spec.send_functions = {};  // exit rule has no recursive body atom
    } else {
      spec.vars = options.v_r;
      spec.label = h_label;
      spec.function = h;
      spec.constrain = true;
      spec.send_functions = {h};
    }
  }

  return BuildBundle(program, info, num_processors, specs,
                     std::move(registry), options.fragment_bases,
                     /*non_redundant=*/true);
}

StatusOr<RewriteBundle> RewriteGeneral(
    const Program& program, const ProgramInfo& info, int num_processors,
    const std::vector<GeneralRuleSpec>& rule_specs, bool fragment_bases) {
  if (rule_specs.size() != program.rules.size()) {
    return Status::InvalidArgument(
        "RewriteGeneral requires one GeneralRuleSpec per rule");
  }
  auto registry = std::make_shared<DiscriminatingRegistry>();
  std::vector<RuleSpecInternal> specs(program.rules.size());
  bool all_constrained = true;
  for (size_t r = 0; r < program.rules.size(); ++r) {
    RuleSpecInternal& spec = specs[r];
    spec.vars = rule_specs[r].vars;
    spec.label =
        program.symbols->Intern("h" + std::to_string(r + 1));
    spec.function = registry->Register(rule_specs[r].h);
    spec.constrain = !spec.vars.empty();
    if (!spec.constrain) all_constrained = false;
    bool has_recursive_atom = false;
    for (const Atom& atom : program.rules[r].body) {
      if (info.IsDerived(atom.predicate)) has_recursive_atom = true;
    }
    if (has_recursive_atom) spec.send_functions = {spec.function};
  }
  return BuildBundle(program, info, num_processors, specs,
                     std::move(registry), fragment_bases,
                     /*non_redundant=*/all_constrained);
}

StatusOr<RewriteBundle> RewriteTradeoff(const Program& program,
                                        const ProgramInfo& info,
                                        const LinearSirup& sirup,
                                        int num_processors,
                                        const TradeoffOptions& options) {
  if (static_cast<int>(options.h_i.size()) != num_processors) {
    return Status::InvalidArgument(
        "RewriteTradeoff requires one h_i per processor");
  }
  // Section 6 restriction: every variable of v(r) must appear in the
  // recursive body atom Y so each processor can route its outputs.
  for (Symbol v : options.v_r) {
    if (FirstPosition(sirup.rec_body_atom(), v) < 0) {
      return Status::InvalidArgument(
          "Section 6 requires every v(r) variable to occur in Y; '" +
          program.symbols->Name(v) + "' does not");
    }
  }

  auto registry = std::make_shared<DiscriminatingRegistry>();
  int h_prime = registry->Register(options.h_prime);
  std::vector<int> send_fns;
  send_fns.reserve(options.h_i.size());
  for (const DiscriminatingFunction& fn : options.h_i) {
    send_fns.push_back(registry->Register(fn));
  }

  std::vector<RuleSpecInternal> specs(program.rules.size());
  for (size_t r = 0; r < program.rules.size(); ++r) {
    RuleSpecInternal& spec = specs[r];
    if (program.rules[r] == sirup.exit) {
      spec.vars = options.v_e;
      spec.label = program.symbols->Intern("h'");
      spec.function = h_prime;
      spec.constrain = true;
    } else {
      // Processing rule of R_i: no constraint; per-processor sends.
      spec.vars = options.v_r;
      spec.label = program.symbols->Intern("h_i");
      spec.constrain = false;
      spec.send_functions = send_fns;
    }
  }
  return BuildBundle(program, info, num_processors, specs,
                     std::move(registry), /*fragment_bases=*/false,
                     /*non_redundant=*/false);
}

}  // namespace pdatalog
