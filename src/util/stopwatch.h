// Wall-clock stopwatch for benchmark harnesses.
#ifndef PDATALOG_UTIL_STOPWATCH_H_
#define PDATALOG_UTIL_STOPWATCH_H_

#include <chrono>

namespace pdatalog {

// Measures elapsed wall time from construction or the last Reset().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pdatalog

#endif  // PDATALOG_UTIL_STOPWATCH_H_
