#include "util/table.h"

#include <cassert>
#include <cstdio>

namespace pdatalog {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }

  auto render_row = [&](const std::vector<std::string>& row,
                        std::string* out) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) *out += "  ";
      // Right-align every cell; headers line up with numeric columns.
      out->append(widths[c] - row[c].size(), ' ');
      *out += row[c];
    }
    *out += '\n';
  };

  std::string out;
  render_row(header_, &out);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) render_row(row, &out);
  return out;
}

void TextTable::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace pdatalog
