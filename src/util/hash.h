// Hashing and deterministic pseudo-randomness primitives.
//
// All hashing in the library funnels through these functions so that
// discriminating functions, relation indexes, and tests agree on tuple
// hashes and remain deterministic across runs and platforms.
#ifndef PDATALOG_UTIL_HASH_H_
#define PDATALOG_UTIL_HASH_H_

#include <cstdint>

namespace pdatalog {

// SplitMix64 finalizer: a strong 64-bit mixing function.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-dependent combination of a running hash with one more value.
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return Mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

// Deterministic, seedable PRNG (SplitMix64 stream). Used by workload
// generators and property tests; never by library semantics.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    return Mix64(state_ - 0x9e3779b97f4a7c15ULL + state_);
  }

  // Uniform in [0, bound); bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace pdatalog

#endif  // PDATALOG_UTIL_HASH_H_
