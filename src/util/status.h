// Lightweight error-handling vocabulary used across the library.
//
// The library does not use C++ exceptions. Fallible operations return
// `Status` (or `StatusOr<T>` when they also produce a value); callers
// inspect `ok()` before using the result.
#ifndef PDATALOG_UTIL_STATUS_H_
#define PDATALOG_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace pdatalog {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
};

// Returns a short human-readable name, e.g. "INVALID_ARGUMENT".
const char* StatusCodeName(StatusCode code);

// Value type describing the outcome of an operation: either OK, or an
// error code plus a message. Copyable and cheap for the OK case.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Either a `T` or a non-OK `Status`. Accessing the value of a non-OK
// result is a programming error (checked by assert in debug builds).
template <typename T>
class StatusOr {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  StatusOr(T value) : value_(std::move(value)) {}
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace pdatalog

// Propagates a non-OK Status from an expression to the caller.
#define PDATALOG_RETURN_IF_ERROR(expr)                \
  do {                                                \
    ::pdatalog::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                        \
  } while (0)

#endif  // PDATALOG_UTIL_STATUS_H_
