// Plain-text table rendering for benchmark and example output.
//
// Benches reproduce the paper's (qualitative) results as aligned console
// tables; this class handles column sizing and alignment.
#ifndef PDATALOG_UTIL_TABLE_H_
#define PDATALOG_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pdatalog {

// Accumulates rows of string cells and renders them with right-aligned,
// padded columns. Numeric convenience overloads format through
// std::to_string / fixed precision.
class TextTable {
 public:
  // `header` defines the column count; subsequent rows must match it.
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  // Cell-building helpers for mixed-type rows.
  static std::string Cell(const std::string& s) { return s; }
  static std::string Cell(const char* s) { return s; }
  static std::string Cell(int64_t v) { return std::to_string(v); }
  static std::string Cell(uint64_t v) { return std::to_string(v); }
  static std::string Cell(int v) { return std::to_string(v); }
  static std::string Cell(double v, int precision = 3);

  // Renders the table (header, separator, rows) as one string.
  std::string ToString() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pdatalog

#endif  // PDATALOG_UTIL_TABLE_H_
