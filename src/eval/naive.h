// Naive (Gauss-Seidel-free, full re-evaluation) bottom-up evaluation.
// Kept as a differential-testing oracle and as the baseline that makes
// semi-naive's work savings measurable (bench_micro).
#ifndef PDATALOG_EVAL_NAIVE_H_
#define PDATALOG_EVAL_NAIVE_H_

#include "datalog/analysis.h"
#include "eval/seminaive.h"
#include "storage/database.h"

namespace pdatalog {

// Evaluates `program` naively: every round applies every rule to the
// full current relations until a fixpoint is reached. Produces the same
// least model as SemiNaiveEvaluate but re-derives tuples every round.
Status NaiveEvaluate(const Program& program, const ProgramInfo& info,
                     Database* db, EvalStats* stats);

}  // namespace pdatalog

#endif  // PDATALOG_EVAL_NAIVE_H_
