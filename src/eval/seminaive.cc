#include "eval/seminaive.h"

#include <algorithm>
#include <unordered_map>

#include "eval/stratify.h"
#include "obs/trace.h"

namespace pdatalog {

StatusOr<CompiledProgram> CompiledProgram::Compile(const Program& program,
                                                   const ProgramInfo& info,
                                                   const EvalOptions& options) {
  CompiledProgram out;
  for (const Rule& rule : program.rules) {
    RuleVariants variants{CompiledRule{}, {}, false};
    StatusOr<CompiledRule> full =
        CompiledRule::Compile(rule, -1, options.greedy_join_order);
    if (!full.ok()) return full.status();
    variants.full = std::move(*full);

    for (size_t i = 0; i < rule.body.size(); ++i) {
      if (!info.IsDerived(rule.body[i].predicate)) continue;
      variants.has_derived_body = true;
      StatusOr<CompiledRule> delta = CompiledRule::Compile(
          rule, static_cast<int>(i), options.greedy_join_order);
      if (!delta.ok()) return delta.status();
      variants.deltas.emplace_back(static_cast<int>(i), std::move(*delta));
    }

    for (const auto& req : variants.full.required_indexes()) {
      out.required_indexes_.push_back(req);
    }
    for (const auto& [_, compiled] : variants.deltas) {
      for (const auto& req : compiled.required_indexes()) {
        out.required_indexes_.push_back(req);
      }
    }
    out.rules_.push_back(std::move(variants));
  }
  std::sort(out.required_indexes_.begin(), out.required_indexes_.end());
  out.required_indexes_.erase(
      std::unique(out.required_indexes_.begin(), out.required_indexes_.end()),
      out.required_indexes_.end());
  return out;
}

namespace {

struct Watermark {
  size_t old_end = 0;
  size_t cur_end = 0;
};

}  // namespace

Status SemiNaiveEvaluate(const Program& program, const ProgramInfo& info,
                         Database* db, EvalStats* stats,
                         const ConstraintEvaluator* constraint_eval,
                         const EvalOptions& options) {
  if (options.stratified) {
    // Evaluate the condensation bottom-up: each stratum's rules form a
    // sub-program in which lower-strata predicates classify as base
    // (their relations in `db` are already complete and frozen).
    Stratification strat = Stratify(program, info);
    EvalOptions sub_options = options;
    sub_options.stratified = false;
    for (Symbol p : info.predicates) {
      db->GetOrCreate(p, info.arity.at(p));
    }
    for (size_t s = 0; s < strat.strata.size(); ++s) {
      Program sub;
      sub.symbols = program.symbols;
      for (int r : strat.rules_by_stratum[s]) {
        sub.rules.push_back(program.rules[r]);
      }
      ProgramInfo sub_info;
      PDATALOG_RETURN_IF_ERROR(Validate(sub, &sub_info));
      EvalStats sub_stats;
      PDATALOG_RETURN_IF_ERROR(SemiNaiveEvaluate(
          sub, sub_info, db, &sub_stats, constraint_eval, sub_options));
      stats->rounds += sub_stats.rounds;
      stats->firings += sub_stats.firings;
      stats->tuples_inserted += sub_stats.tuples_inserted;
      stats->rows_examined += sub_stats.rows_examined;
    }
    return Status::Ok();
  }

  StatusOr<CompiledProgram> compiled =
      CompiledProgram::Compile(program, info, options);
  if (!compiled.ok()) return compiled.status();

  // Materialize every predicate's relation (base ones may be absent from
  // db if no facts were loaded; derived ones start empty).
  for (Symbol p : info.predicates) {
    db->GetOrCreate(p, info.arity.at(p));
  }

  std::unordered_map<Symbol, Watermark> marks;
  for (Symbol p : info.derived) marks.emplace(p, Watermark{});

  ExecStats exec_stats;
  JoinScratch scratch;

  auto ensure_indexes = [&] {
    for (const auto& [pred, mask] : compiled->required_indexes()) {
      db->GetOrCreate(pred, info.arity.at(pred)).EnsureIndex(mask);
    }
  };

  // One BatchInserter per head relation: firings buffer and flush
  // through InsertBlock (tight hash loop + prefetched dedup probes)
  // instead of paying one dependent random load per firing. Flushed
  // after every Execute call, so every point that reads a relation's
  // size sees the same state as the unbuffered path.
  std::unordered_map<Relation*, BatchInserter> inserters;
  auto make_sink = [&](Relation* rel) {
    BatchInserter* ins = &inserters.try_emplace(rel, rel).first->second;
    return [ins, stats](const Value* values, int n) {
      stats->tuples_inserted += ins->Push(values, n);
    };
  };
  auto flush_sink = [&](Relation* rel) {
    stats->tuples_inserted += inserters.at(rel).Flush();
  };

  // Round 0: rules without derived body atoms (exit rules) fire once.
  ensure_indexes();
  {
    TraceScope init(options.trace, TracePhase::kInit);
    for (size_t r = 0; r < program.rules.size(); ++r) {
      const auto& variants = compiled->rules()[r];
      if (variants.has_derived_body) continue;
      const Rule& rule = program.rules[r];
      Relation* head_rel = db->Find(rule.head.predicate);
      std::vector<AtomInput> inputs(rule.body.size());
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Relation* rel = db->Find(rule.body[i].predicate);
        inputs[i] = AtomInput{rel, 0, rel->size()};
      }
      JoinExecutor::Execute(variants.full, inputs, constraint_eval,
                            make_sink(head_rel), &exec_stats, &scratch);
      flush_sink(head_rel);
    }
  }
  stats->rounds = 1;
  for (auto& [p, mark] : marks) {
    mark.cur_end = db->Find(p)->size();
  }

  // Semi-naive rounds: each recursive rule runs once per derived body
  // occurrence, with that occurrence reading the delta window, earlier
  // derived occurrences reading the pre-round prefix, and later ones
  // reading everything up to the round start.
  while (true) {
    bool any_delta = false;
    for (const auto& [p, mark] : marks) {
      if (mark.cur_end > mark.old_end) any_delta = true;
    }
    if (!any_delta) break;

    ensure_indexes();
    if (options.trace != nullptr) {
      options.trace->Instant(TracePhase::kRound,
                             static_cast<uint32_t>(stats->rounds));
    }
    {
      TraceScope probe(options.trace, TracePhase::kProbe,
                       static_cast<uint32_t>(stats->rounds));
      for (size_t r = 0; r < program.rules.size(); ++r) {
        const auto& variants = compiled->rules()[r];
        if (!variants.has_derived_body) continue;
        const Rule& rule = program.rules[r];
        Relation* head_rel = db->Find(rule.head.predicate);

        for (const auto& [delta_idx, delta_rule] : variants.deltas) {
          std::vector<AtomInput> inputs(rule.body.size());
          bool empty_delta = false;
          for (size_t i = 0; i < rule.body.size(); ++i) {
            const Atom& atom = rule.body[i];
            const Relation* rel = db->Find(atom.predicate);
            if (!info.IsDerived(atom.predicate)) {
              inputs[i] = AtomInput{rel, 0, rel->size()};
              continue;
            }
            const Watermark& mark = marks.at(atom.predicate);
            if (static_cast<int>(i) == delta_idx) {
              inputs[i] = AtomInput{rel, mark.old_end, mark.cur_end};
              if (mark.old_end == mark.cur_end) empty_delta = true;
            } else if (static_cast<int>(i) < delta_idx) {
              inputs[i] = AtomInput{rel, 0, mark.old_end};
            } else {
              inputs[i] = AtomInput{rel, 0, mark.cur_end};
            }
          }
          if (empty_delta) continue;
          JoinExecutor::Execute(delta_rule, inputs, constraint_eval,
                                make_sink(head_rel), &exec_stats, &scratch);
          flush_sink(head_rel);
        }
      }
    }

    ++stats->rounds;
    for (auto& [p, mark] : marks) {
      mark.old_end = mark.cur_end;
      mark.cur_end = db->Find(p)->size();
    }
  }

  stats->firings += exec_stats.firings;
  stats->rows_examined += exec_stats.rows_examined;
  return Status::Ok();
}

}  // namespace pdatalog
