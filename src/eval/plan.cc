#include "eval/plan.h"

#include <algorithm>
#include <cassert>

namespace pdatalog {

namespace {

// Dense variable numbering for one rule.
int VarId(std::vector<Symbol>* names, Symbol sym) {
  for (size_t i = 0; i < names->size(); ++i) {
    if ((*names)[i] == sym) return static_cast<int>(i);
  }
  names->push_back(sym);
  return static_cast<int>(names->size() - 1);
}

int FindVar(const std::vector<Symbol>& names, Symbol sym) {
  for (size_t i = 0; i < names.size(); ++i) {
    if (names[i] == sym) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace

std::vector<int> CompiledRule::VarIds(const std::vector<Symbol>& vars) const {
  std::vector<int> ids;
  ids.reserve(vars.size());
  for (Symbol v : vars) ids.push_back(FindVar(var_names_, v));
  return ids;
}

StatusOr<CompiledRule> CompiledRule::Compile(const Rule& rule,
                                             int preferred_first,
                                             bool greedy_order) {
  CompiledRule compiled;
  compiled.rule_ = rule;

  if (rule.head.arity() > 32) {
    return Status::InvalidArgument("head arity exceeds 32");
  }
  for (const Atom& atom : rule.body) {
    if (atom.arity() > 32) {
      return Status::InvalidArgument("atom arity exceeds 32");
    }
  }
  for (const HashConstraint& c : rule.constraints) {
    if (c.vars.size() > 32) {
      return Status::InvalidArgument(
          "discriminating sequence exceeds 32 variables");
    }
  }

  // Assign dense ids to all body variables in first-occurrence order.
  for (const Atom& atom : rule.body) {
    for (const Term& t : atom.args) {
      if (t.is_var()) VarId(&compiled.var_names_, t.sym);
    }
  }
  compiled.num_vars_ = static_cast<int>(compiled.var_names_.size());

  // Constraint variable ids; all must be body variables.
  for (const HashConstraint& c : rule.constraints) {
    std::vector<int> ids;
    for (Symbol v : c.vars) {
      int id = FindVar(compiled.var_names_, v);
      if (id < 0) {
        return Status::InvalidArgument(
            "constraint variable does not occur in rule body");
      }
      ids.push_back(id);
    }
    compiled.constraint_var_ids_.push_back(std::move(ids));
  }

  // Greedy join ordering: preferred atom first, then most-bound-first.
  std::vector<bool> bound(compiled.num_vars_, false);
  std::vector<bool> used(rule.body.size(), false);
  std::vector<bool> constraint_done(rule.constraints.size(), false);

  auto bound_count = [&](const Atom& atom) {
    int n = 0;
    for (const Term& t : atom.args) {
      if (t.is_const() || (t.is_var() && bound[FindVar(compiled.var_names_,
                                                       t.sym)])) {
        ++n;
      }
    }
    return n;
  };

  for (size_t step_no = 0; step_no < rule.body.size(); ++step_no) {
    int pick = -1;
    if (step_no == 0 && preferred_first >= 0) {
      pick = preferred_first;
    } else if (!greedy_order) {
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (!used[i]) {
          pick = static_cast<int>(i);
          break;
        }
      }
    } else {
      int best = -1;
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (used[i]) continue;
        int score = bound_count(rule.body[i]);
        if (score > best) {
          best = score;
          pick = static_cast<int>(i);
        }
      }
    }
    assert(pick >= 0 && !used[pick]);
    used[pick] = true;

    const Atom& atom = rule.body[pick];
    PlanStep step;
    step.body_index = pick;
    step.predicate = atom.predicate;
    step.index_mask = 0;
    step.positions.resize(atom.args.size());

    for (size_t c = 0; c < atom.args.size(); ++c) {
      const Term& t = atom.args[c];
      PlanPos& pos = step.positions[c];
      if (t.is_const()) {
        pos.kind = PlanPos::Kind::kConst;
        pos.value = t.sym;
        step.index_mask |= 1u << c;
      } else {
        int id = FindVar(compiled.var_names_, t.sym);
        pos.var = id;
        if (bound[id]) {
          pos.kind = PlanPos::Kind::kBound;
          step.index_mask |= 1u << c;
        } else {
          pos.kind = PlanPos::Kind::kFree;
          bound[id] = true;  // bound by this position for later positions
        }
      }
    }
    // A variable repeated within this atom: its second occurrence was
    // classified kFree above only for the very first occurrence; any
    // repeat after the first occurrence saw bound[id]==true and became
    // kBound, but it is NOT part of the index key (its value is only
    // known after fetching the row). Remove such columns from the mask.
    {
      std::vector<bool> bound_before(compiled.num_vars_, false);
      // Recompute which vars were bound before this atom started.
      for (int v = 0; v < compiled.num_vars_; ++v) bound_before[v] = bound[v];
      for (size_t c = 0; c < atom.args.size(); ++c) {
        const Term& t = atom.args[c];
        if (t.is_var()) {
          int id = FindVar(compiled.var_names_, t.sym);
          // Undo: mark vars first bound inside this atom.
          PlanPos& pos = step.positions[c];
          if (pos.kind == PlanPos::Kind::kFree) bound_before[id] = false;
        }
      }
      for (size_t c = 0; c < atom.args.size(); ++c) {
        PlanPos& pos = step.positions[c];
        if (pos.kind == PlanPos::Kind::kBound && !bound_before[pos.var]) {
          step.index_mask &= ~(1u << c);  // bound within this atom only
        }
      }
    }

    // Constraints whose variables are now all bound are checked here.
    for (size_t ci = 0; ci < rule.constraints.size(); ++ci) {
      if (constraint_done[ci]) continue;
      bool ready = true;
      for (int id : compiled.constraint_var_ids_[ci]) {
        if (!bound[id]) {
          ready = false;
          break;
        }
      }
      if (ready) {
        constraint_done[ci] = true;
        step.constraints_ready.push_back(static_cast<int>(ci));
      }
    }

    if (step.index_mask != 0) {
      compiled.required_indexes_.emplace_back(atom.predicate,
                                              step.index_mask);
    }
    compiled.steps_.push_back(std::move(step));
  }

  for (size_t ci = 0; ci < rule.constraints.size(); ++ci) {
    if (!constraint_done[ci]) {
      return Status::InvalidArgument(
          "hash constraint variables never bound by the body");
    }
  }

  // Head recipe.
  compiled.head_recipe_.resize(rule.head.args.size());
  for (size_t c = 0; c < rule.head.args.size(); ++c) {
    const Term& t = rule.head.args[c];
    PlanPos& pos = compiled.head_recipe_[c];
    if (t.is_const()) {
      pos.kind = PlanPos::Kind::kConst;
      pos.value = t.sym;
    } else {
      int id = FindVar(compiled.var_names_, t.sym);
      if (id < 0 || !bound[id]) {
        return Status::InvalidArgument(
            "rule is not range-restricted: head variable unbound");
      }
      pos.kind = PlanPos::Kind::kBound;
      pos.var = id;
    }
  }

  // Deduplicate required indexes.
  std::sort(compiled.required_indexes_.begin(),
            compiled.required_indexes_.end());
  compiled.required_indexes_.erase(
      std::unique(compiled.required_indexes_.begin(),
                  compiled.required_indexes_.end()),
      compiled.required_indexes_.end());

  return compiled;
}

std::string CompiledRule::DebugString(const SymbolTable& symbols) const {
  std::string out = ToString(rule_, symbols);
  out += '\n';
  for (size_t s = 0; s < steps_.size(); ++s) {
    const PlanStep& step = steps_[s];
    const Atom& atom = rule_.body[step.body_index];
    out += "  " + std::to_string(s + 1) + ". ";
    if (step.index_mask == 0) {
      out += "scan ";
      out += ToString(atom, symbols);
    } else {
      out += "probe ";
      out += ToString(atom, symbols);
      out += " on (";
      bool first = true;
      for (int c = 0; c < atom.arity(); ++c) {
        if (!(step.index_mask & (1u << c))) continue;
        if (!first) out += ", ";
        first = false;
        out += ToString(atom.args[c], symbols);
      }
      out += ")";
    }
    for (int ci : step.constraints_ready) {
      out += "  [check " + ToString(rule_.constraints[ci], symbols) + "]";
    }
    out += '\n';
  }
  out += "  emit " + ToString(rule_.head, symbols) + "\n";
  return out;
}

void JoinExecutor::Execute(const CompiledRule& compiled,
                           const std::vector<AtomInput>& inputs,
                           const ConstraintEvaluator* constraint_eval,
                           const std::function<void(const Tuple&)>& sink,
                           ExecStats* stats) {
  Execute(compiled, inputs, constraint_eval,
          [&sink](const Tuple& t) { sink(t); }, stats);
}

}  // namespace pdatalog
