#include "eval/stratify.h"

#include <algorithm>
#include <unordered_map>

namespace pdatalog {

namespace {

// Iterative Tarjan SCC over derived predicates.
class Tarjan {
 public:
  Tarjan(const std::vector<Symbol>& nodes,
         const std::unordered_map<Symbol, std::vector<Symbol>>& adj)
      : nodes_(nodes), adj_(adj) {
    for (Symbol v : nodes_) {
      if (index_.find(v) == index_.end()) Strongconnect(v);
    }
  }

  // SCCs in reverse topological order (Tarjan's natural output order).
  const std::vector<std::vector<Symbol>>& components() const {
    return components_;
  }

 private:
  void Strongconnect(Symbol root) {
    struct Frame {
      Symbol v;
      size_t edge = 0;
    };
    std::vector<Frame> call_stack{{root}};
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      Symbol v = frame.v;
      if (frame.edge == 0) {
        index_[v] = lowlink_[v] = counter_++;
        stack_.push_back(v);
        on_stack_[v] = true;
      }
      bool recursed = false;
      auto it = adj_.find(v);
      if (it != adj_.end()) {
        while (frame.edge < it->second.size()) {
          Symbol w = it->second[frame.edge++];
          if (index_.find(w) == index_.end()) {
            call_stack.push_back({w});
            recursed = true;
            break;
          }
          if (on_stack_[w]) {
            lowlink_[v] = std::min(lowlink_[v], index_[w]);
          }
        }
      }
      if (recursed) continue;
      if (lowlink_[v] == index_[v]) {
        std::vector<Symbol> component;
        while (true) {
          Symbol w = stack_.back();
          stack_.pop_back();
          on_stack_[w] = false;
          component.push_back(w);
          if (w == v) break;
        }
        std::sort(component.begin(), component.end());
        components_.push_back(std::move(component));
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        Frame& parent = call_stack.back();
        lowlink_[parent.v] = std::min(lowlink_[parent.v], lowlink_[v]);
      }
    }
  }

  const std::vector<Symbol>& nodes_;
  const std::unordered_map<Symbol, std::vector<Symbol>>& adj_;
  int counter_ = 0;
  std::unordered_map<Symbol, int> index_;
  std::unordered_map<Symbol, int> lowlink_;
  std::unordered_map<Symbol, bool> on_stack_;
  std::vector<Symbol> stack_;
  std::vector<std::vector<Symbol>> components_;
};

}  // namespace

Stratification Stratify(const Program& program, const ProgramInfo& info) {
  // Dependency edges between derived predicates: head -> body (so that
  // Tarjan's reverse-topological SCC order emits dependencies first).
  std::vector<Symbol> nodes;
  for (Symbol p : info.predicates) {
    if (info.IsDerived(p)) nodes.push_back(p);
  }
  std::unordered_map<Symbol, std::vector<Symbol>> adj;
  for (const Rule& rule : program.rules) {
    for (const Atom& atom : rule.body) {
      if (info.IsDerived(atom.predicate)) {
        adj[rule.head.predicate].push_back(atom.predicate);
      }
    }
  }

  Tarjan tarjan(nodes, adj);

  Stratification out;
  out.strata = tarjan.components();
  out.rules_by_stratum.resize(out.strata.size());
  std::unordered_map<Symbol, int> stratum_of;
  for (size_t s = 0; s < out.strata.size(); ++s) {
    for (Symbol p : out.strata[s]) stratum_of[p] = static_cast<int>(s);
  }
  for (size_t r = 0; r < program.rules.size(); ++r) {
    out.rules_by_stratum[stratum_of.at(program.rules[r].head.predicate)]
        .push_back(static_cast<int>(r));
  }
  return out;
}

}  // namespace pdatalog
