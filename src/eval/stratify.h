// Stratification of positive Datalog programs by strongly connected
// components of the predicate dependency graph: lower strata are
// evaluated to fixpoint first, so rules of upper strata never rerun
// while their inputs are still growing.
#ifndef PDATALOG_EVAL_STRATIFY_H_
#define PDATALOG_EVAL_STRATIFY_H_

#include <vector>

#include "datalog/analysis.h"
#include "util/status.h"

namespace pdatalog {

struct Stratification {
  // Derived predicates grouped by SCC, in topological (bottom-up)
  // order: stratum s only depends on strata < s and base predicates.
  std::vector<std::vector<Symbol>> strata;
  // rules_by_stratum[s] = indices into Program::rules whose head
  // predicate lies in stratum s.
  std::vector<std::vector<int>> rules_by_stratum;
};

// Computes the condensation of the derived-predicate dependency graph
// (Tarjan SCC + topological order of components).
Stratification Stratify(const Program& program, const ProgramInfo& info);

}  // namespace pdatalog

#endif  // PDATALOG_EVAL_STRATIFY_H_
