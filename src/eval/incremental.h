// Incremental maintenance of Datalog fixpoints under monotone updates.
//
// Positive Datalog is monotone: adding base facts can only add derived
// tuples, so a materialized fixpoint resumes with the new facts as
// deltas instead of recomputing from scratch. This generalizes the
// semi-naive delta machinery to track *every* predicate (base ones
// included): after AddFact(s), Evaluate() runs delta variants for each
// body occurrence — including base occurrences — and reaches the same
// fixpoint a batch evaluation over the union would.
#ifndef PDATALOG_EVAL_INCREMENTAL_H_
#define PDATALOG_EVAL_INCREMENTAL_H_

#include <unordered_map>

#include "eval/seminaive.h"

namespace pdatalog {

class IncrementalEvaluator {
 public:
  // `program`/`info` must outlive the evaluator. The database starts
  // empty; load facts with AddFact and call Evaluate.
  static StatusOr<IncrementalEvaluator> Create(const Program& program,
                                               const ProgramInfo& info);

  // Inserts one base tuple (deduplicated). Returns true if new.
  // It is an error to add facts for derived predicates.
  StatusOr<bool> AddFact(Symbol predicate, const Tuple& tuple);

  // Runs semi-naive rounds until the fixpoint incorporates everything
  // added since the last Evaluate(). Cumulative stats are kept in
  // stats(); the call returns the stats of this round batch only.
  StatusOr<EvalStats> Evaluate();

  const Database& db() const { return db_; }
  const Relation* Find(Symbol predicate) const { return db_.Find(predicate); }
  const EvalStats& stats() const { return stats_; }

 private:
  IncrementalEvaluator(const Program* program, const ProgramInfo* info)
      : program_(program), info_(info) {}

  const Program* program_;
  const ProgramInfo* info_;
  CompiledProgram compiled_;
  Database db_;
  // Semi-naive watermarks for every predicate (base and derived).
  struct Watermark {
    size_t old_end = 0;
    size_t cur_end = 0;
  };
  std::unordered_map<Symbol, Watermark> marks_;
  JoinScratch scratch_;
  EvalStats stats_;
  bool first_run_ = true;
};

}  // namespace pdatalog

#endif  // PDATALOG_EVAL_INCREMENTAL_H_
