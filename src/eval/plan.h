// Rule compilation and join execution.
//
// A rule body is compiled once into a `CompiledRule`: an ordered sequence
// of steps, one per body atom, each annotated with which argument
// positions are constants, already-bound variables, or fresh variables.
// Steps with at least one bound position probe a hash index on the bound
// columns; steps with none scan.
//
// The same compiled rule is executed in different *modes* by the
// evaluators: the caller supplies, per body atom, the relation to read
// and the row range [begin, end) to consider. This is how semi-naive
// delta variants and the parallel workers' local relations reuse one
// compilation path.
//
// Hash constraints (the paper's `h(v(r)) = i` conjuncts) are checked as
// soon as all their variables are bound, through a ConstraintEvaluator
// supplied by the caller (the discriminating-function registry in core/).
#ifndef PDATALOG_EVAL_PLAN_H_
#define PDATALOG_EVAL_PLAN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "datalog/ast.h"
#include "datalog/validate.h"
#include "storage/relation.h"
#include "util/status.h"

namespace pdatalog {

// Evaluates hash constraints. Implemented by
// core/discriminating.h:DiscriminatingRegistry.
class ConstraintEvaluator {
 public:
  virtual ~ConstraintEvaluator() = default;

  // Returns the processor id assigned by discriminating function
  // `function` to the ground sequence `values[0..n)`.
  virtual int Evaluate(int function, const Value* values, int n) const = 0;
};

// Where each argument position of a step (or the head) gets its value.
struct PlanPos {
  enum class Kind { kConst, kBound, kFree };
  Kind kind;
  Value value = 0;  // kConst: the constant symbol id
  int var = -1;     // kBound/kFree: dense rule-local variable id
};

struct PlanStep {
  int body_index;    // index of this atom in the original rule body
  Symbol predicate;
  uint32_t index_mask;  // columns with kConst/kBound positions
  std::vector<PlanPos> positions;
  // Constraints (indices into rule.constraints) that become fully bound
  // after this step and must be checked here.
  std::vector<int> constraints_ready;
};

// A rule compiled for execution. Owns a copy of the rule.
class CompiledRule {
 public:
  // Compiles `rule`, ordering body atoms greedily by number of bound
  // positions. `preferred_first` (a body index, or -1) forces that atom
  // to be joined first — evaluators pass the delta atom here.
  // `greedy_order` = false keeps the remaining atoms in textual body
  // order (the ablation baseline; see bench_ablation).
  static StatusOr<CompiledRule> Compile(const Rule& rule,
                                        int preferred_first = -1,
                                        bool greedy_order = true);

  const Rule& rule() const { return rule_; }
  int num_vars() const { return num_vars_; }
  const std::vector<PlanStep>& steps() const { return steps_; }
  const std::vector<PlanPos>& head_recipe() const { return head_recipe_; }

  // (predicate, column mask) pairs for which indexes must exist and
  // cover all scanned rows before Execute() runs.
  const std::vector<std::pair<Symbol, uint32_t>>& required_indexes() const {
    return required_indexes_;
  }

  // The variable ids (in rule-local numbering) of `vars`; -1 for names
  // that do not occur in the rule body.
  std::vector<int> VarIds(const std::vector<Symbol>& vars) const;

  // Per constraint (parallel to rule().constraints): dense variable ids
  // of its discriminating sequence.
  const std::vector<std::vector<int>>& constraint_var_ids() const {
    return constraint_var_ids_;
  }

  // Human-readable access plan (EXPLAIN output), e.g.
  //   anc(X, Y) :- par(X, Z), anc_in(Z, Y), h(Z) = 0.
  //     1. scan anc_in(Z, Y)            [check h(Z) = 0]
  //     2. probe par(X, Z) on (Z)
  //     emit anc(X, Y)
  std::string DebugString(const SymbolTable& symbols) const;

 private:
  Rule rule_;
  int num_vars_ = 0;
  std::vector<Symbol> var_names_;  // dense id -> symbol
  std::vector<PlanStep> steps_;
  std::vector<PlanPos> head_recipe_;
  // Per constraint: dense var ids of its discriminating sequence.
  std::vector<std::vector<int>> constraint_var_ids_;
  std::vector<std::pair<Symbol, uint32_t>> required_indexes_;

  friend class JoinExecutor;
};

// One body atom's data source for a particular execution.
struct AtomInput {
  const Relation* relation = nullptr;
  size_t begin = 0;
  size_t end = 0;
};

// Statistics of one Execute() call.
struct ExecStats {
  // Successful ground substitutions (Definition 4 "successful firings"):
  // complete bindings satisfying every body atom and constraint. Counted
  // whether or not the derived head tuple was already known.
  uint64_t firings = 0;
  // Index probes + scan rows examined; a rough work measure.
  uint64_t rows_examined = 0;
};

// Executes a compiled rule.
class JoinExecutor {
 public:
  // `inputs[i]` feeds the rule's body atom i (original body order).
  // `constraint_eval` may be null iff the rule has no constraints.
  // `sink` is called once per successful firing with the instantiated
  // head tuple; it returns void and may deduplicate internally.
  static void Execute(const CompiledRule& compiled,
                      const std::vector<AtomInput>& inputs,
                      const ConstraintEvaluator* constraint_eval,
                      const std::function<void(const Tuple&)>& sink,
                      ExecStats* stats);
};

}  // namespace pdatalog

#endif  // PDATALOG_EVAL_PLAN_H_
