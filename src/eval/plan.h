// Rule compilation and join execution.
//
// A rule body is compiled once into a `CompiledRule`: an ordered sequence
// of steps, one per body atom, each annotated with which argument
// positions are constants, already-bound variables, or fresh variables.
// Steps with at least one bound position probe a hash index on the bound
// columns; steps with none scan.
//
// The same compiled rule is executed in different *modes* by the
// evaluators: the caller supplies, per body atom, the relation to read
// and the row range [begin, end) to consider. This is how semi-naive
// delta variants and the parallel workers' local relations reuse one
// compilation path.
//
// `JoinExecutor::Execute` is a template over the sink callable so the
// per-firing dispatch inlines; a `std::function` overload remains for
// callers that don't sit on a hot path. Probes go through
// `ColumnIndex::ProbeRange`, which hashes the bound values in place —
// the probe path performs no heap allocation.
//
// Hash constraints (the paper's `h(v(r)) = i` conjuncts) are checked as
// soon as all their variables are bound, through a ConstraintEvaluator
// supplied by the caller (the discriminating-function registry in core/).
#ifndef PDATALOG_EVAL_PLAN_H_
#define PDATALOG_EVAL_PLAN_H_

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "datalog/ast.h"
#include "datalog/validate.h"
#include "obs/histogram.h"
#include "storage/relation.h"
#include "util/status.h"

namespace pdatalog {

// Evaluates hash constraints. Implemented by
// core/discriminating.h:DiscriminatingRegistry.
class ConstraintEvaluator {
 public:
  virtual ~ConstraintEvaluator() = default;

  // Returns the processor id assigned by discriminating function
  // `function` to the ground sequence `values[0..n)`.
  virtual int Evaluate(int function, const Value* values, int n) const = 0;

  // Whether processor `target` may process a ground instance whose
  // discriminating values are `values[0..n)`. The default is the exact
  // constraint `h(v(r)) = target`; adaptive overlays widen it so a
  // processor keeps accepting buckets that were routed to it before a
  // remap (acceptance must only ever grow during a run — shrinking it
  // would drop in-flight tuples and lose derivations).
  virtual bool Accepts(int function, const Value* values, int n,
                       int target) const {
    return Evaluate(function, values, n) == target;
  }

  // Attributes one successful firing to the ground sequence's hash
  // bucket. The executor calls this once per firing and constraint, so
  // an adaptive overlay can see where join work concentrates (routed
  // tuple counts alone cannot: a key's work is its deltas times its
  // join fan-in). No-op by default.
  virtual void ChargeFiring(int function, const Value* values,
                            int n) const {}
};

// Where each argument position of a step (or the head) gets its value.
struct PlanPos {
  enum class Kind { kConst, kBound, kFree };
  Kind kind;
  Value value = 0;  // kConst: the constant symbol id
  int var = -1;     // kBound/kFree: dense rule-local variable id
};

struct PlanStep {
  int body_index;    // index of this atom in the original rule body
  Symbol predicate;
  uint32_t index_mask;  // columns with kConst/kBound positions
  std::vector<PlanPos> positions;
  // Constraints (indices into rule.constraints) that become fully bound
  // after this step and must be checked here.
  std::vector<int> constraints_ready;
};

// A rule compiled for execution. Owns a copy of the rule.
class CompiledRule {
 public:
  // Compiles `rule`, ordering body atoms greedily by number of bound
  // positions. `preferred_first` (a body index, or -1) forces that atom
  // to be joined first — evaluators pass the delta atom here.
  // `greedy_order` = false keeps the remaining atoms in textual body
  // order (the ablation baseline; see bench_ablation).
  static StatusOr<CompiledRule> Compile(const Rule& rule,
                                        int preferred_first = -1,
                                        bool greedy_order = true);

  const Rule& rule() const { return rule_; }
  int num_vars() const { return num_vars_; }
  const std::vector<PlanStep>& steps() const { return steps_; }
  const std::vector<PlanPos>& head_recipe() const { return head_recipe_; }

  // (predicate, column mask) pairs for which indexes must exist and
  // cover all scanned rows before Execute() runs.
  const std::vector<std::pair<Symbol, uint32_t>>& required_indexes() const {
    return required_indexes_;
  }

  // The variable ids (in rule-local numbering) of `vars`; -1 for names
  // that do not occur in the rule body.
  std::vector<int> VarIds(const std::vector<Symbol>& vars) const;

  // Per constraint (parallel to rule().constraints): dense variable ids
  // of its discriminating sequence.
  const std::vector<std::vector<int>>& constraint_var_ids() const {
    return constraint_var_ids_;
  }

  // Human-readable access plan (EXPLAIN output), e.g.
  //   anc(X, Y) :- par(X, Z), anc_in(Z, Y), h(Z) = 0.
  //     1. scan anc_in(Z, Y)            [check h(Z) = 0]
  //     2. probe par(X, Z) on (Z)
  //     emit anc(X, Y)
  std::string DebugString(const SymbolTable& symbols) const;

 private:
  Rule rule_;
  int num_vars_ = 0;
  std::vector<Symbol> var_names_;  // dense id -> symbol
  std::vector<PlanStep> steps_;
  std::vector<PlanPos> head_recipe_;
  // Per constraint: dense var ids of its discriminating sequence.
  std::vector<std::vector<int>> constraint_var_ids_;
  std::vector<std::pair<Symbol, uint32_t>> required_indexes_;

  template <typename Sink>
  friend class JoinRunner;
};

// One body atom's data source for a particular execution.
struct AtomInput {
  const Relation* relation = nullptr;
  size_t begin = 0;
  size_t end = 0;
};

// Statistics of one Execute() call.
struct ExecStats {
  // Successful ground substitutions (Definition 4 "successful firings"):
  // complete bindings satisfying every body atom and constraint. Counted
  // whether or not the derived head tuple was already known.
  uint64_t firings = 0;
  // Index probes + scan rows examined; a rough work measure.
  uint64_t rows_examined = 0;
  // Batches run by the vectorized scan->probe kernel.
  uint64_t batch_probes = 0;
  // Multi-step executions that fell back to the scalar recursive join
  // (plan shape the batch kernel does not cover).
  uint64_t batch_fallbacks = 0;
};

// Reusable per-caller scratch: holds the variable binding buffer and the
// batch kernel's gather/hash buffers so repeated Execute() calls (one
// per rule variant per round) don't reallocate them. A
// default-constructed scratch works for any rule.
struct JoinScratch {
  std::vector<Value> bindings;
  // Batch kernel scratch: surviving scan row ids, their probe keys
  // (column-major, kProbeBatch stride), and the precomputed key hashes.
  std::vector<uint32_t> batch_rows;
  std::vector<Value> batch_keys;
  std::vector<uint64_t> batch_hashes;
  // Optional: records the number of surviving keys per probe batch
  // (WorkerProfile::probe_batch; null when profiling is off).
  Histogram* probe_batch = nullptr;
};

// Recursive nested-loop/index join over the compiled steps, templated
// over the sink so firings dispatch without std::function indirection.
// The sink is invoked either as sink(const Value*, int) — the raw head
// values, valid only during the call — or as sink(const Tuple&) if it
// only accepts tuples.
template <typename Sink>
class JoinRunner {
 public:
  // Rows gathered per batch by the vectorized scan->probe kernel.
  static constexpr size_t kProbeBatch = 256;

  JoinRunner(const CompiledRule& compiled, const std::vector<AtomInput>& inputs,
             const ConstraintEvaluator* constraint_eval, Sink& sink,
             ExecStats* stats, JoinScratch* scratch)
      : compiled_(compiled),
        inputs_(inputs),
        constraint_eval_(constraint_eval),
        sink_(sink),
        stats_(stats),
        scratch_(scratch),
        bindings_(scratch->bindings) {
    bindings_.resize(compiled.num_vars());
  }

  void Run() {
    // The canonical semi-naive shape — scan the delta, probe one index —
    // runs through the batch kernel; everything else recurses row at a
    // time. Single-step rules are pure scans with nothing to batch, so
    // only multi-step executions count as kernel fallbacks.
    const auto& steps = compiled_.steps_;
    if (steps.size() == 2 && steps[0].index_mask == 0 &&
        steps[1].index_mask != 0 && steps[0].positions.size() <= 32) {
      RunBatched();
      return;
    }
    if (steps.size() >= 2) ++stats_->batch_fallbacks;
    Step(0);
  }

 private:
  // Batch-at-a-time kernel for scan(step 0) -> probe(step 1) plans:
  // gather up to kProbeBatch surviving delta rows, hash all their probe
  // keys in one tight loop per key column, prefetch the index slots,
  // then probe with the precomputed hashes and materialize matches.
  // Emission order is identical to the scalar path (survivors in scan
  // order, matches in ascending row-id order).
  void RunBatched() {
    const PlanStep& scan = compiled_.steps_[0];
    const PlanStep& probe_step = compiled_.steps_[1];
    const AtomInput& scan_input = inputs_[scan.body_index];
    const AtomInput& probe_input = inputs_[probe_step.body_index];
    const Relation& probe_rel = *probe_input.relation;
    const ColumnIndex* index = probe_rel.GetIndex(probe_step.index_mask);
    assert(index != nullptr &&
           "index missing; evaluator must EnsureIndex first");
    // The index may lag behind rows appended after the evaluator froze
    // this round's scan bounds, but it must cover the probed range.
    assert(index->built_upto() >= probe_input.end);

    const ColumnStore& store = scan_input.relation->store();
    const int scan_arity = static_cast<int>(scan.positions.size());
    const int kn = std::popcount(probe_step.index_mask);

    std::vector<uint32_t>& rows = scratch_->batch_rows;
    std::vector<Value>& keys = scratch_->batch_keys;
    std::vector<uint64_t>& hashes = scratch_->batch_hashes;
    rows.resize(kProbeBatch);
    keys.resize(static_cast<size_t>(kn) * kProbeBatch);
    hashes.resize(kProbeBatch);

    const Value* cols[32];
    size_t base = scan_input.begin;
    while (base < scan_input.end) {
      // Clamp each batch to the column-chunk edge so every scan column
      // reads through one raw pointer.
      size_t run = scan_input.end - base;
      for (int c = 0; c < scan_arity; ++c) {
        size_t col_run;
        cols[c] = store.ColumnSpan(c, base, &col_run);
        run = std::min(run, col_run);
      }
      const size_t n = std::min(run, kProbeBatch);

      // Phase 1: filter the scan rows (constants, repeated variables,
      // ready constraints) and gather the survivors' probe keys
      // column-major into `keys`.
      uint32_t m = 0;
      for (size_t i = 0; i < n; ++i) {
        ++stats_->rows_examined;
        bool ok = true;
        for (int c = 0; c < scan_arity; ++c) {
          const PlanPos& pos = scan.positions[c];
          Value v = cols[c][i];
          switch (pos.kind) {
            case PlanPos::Kind::kConst:
              if (v != pos.value) ok = false;
              break;
            case PlanPos::Kind::kBound:
              if (v != bindings_[pos.var]) ok = false;
              break;
            case PlanPos::Kind::kFree:
              bindings_[pos.var] = v;
              break;
          }
          if (!ok) break;
        }
        if (!ok) continue;
        for (int ci : scan.constraints_ready) {
          if (!CheckConstraint(ci)) {
            ok = false;
            break;
          }
        }
        if (!ok) continue;
        int k = 0;
        for (size_t c = 0; c < probe_step.positions.size(); ++c) {
          if (!(probe_step.index_mask & (1u << c))) continue;
          const PlanPos& pos = probe_step.positions[c];
          keys[static_cast<size_t>(k) * kProbeBatch + m] =
              pos.kind == PlanPos::Kind::kConst ? pos.value
                                                : bindings_[pos.var];
          ++k;
        }
        rows[m++] = static_cast<uint32_t>(base + i);
      }
      if (scratch_->probe_batch != nullptr) scratch_->probe_batch->Record(m);
      if (m != 0) {
        ++stats_->batch_probes;
        // Phase 2: hash all probe keys — the same mix HashProjection
        // applies, but as one tight loop per key column.
        const uint64_t seed = 0x12345678u ^ static_cast<uint64_t>(kn);
        for (uint32_t s = 0; s < m; ++s) hashes[s] = seed;
        for (int k = 0; k < kn; ++k) {
          const Value* col = keys.data() + static_cast<size_t>(k) * kProbeBatch;
          for (uint32_t s = 0; s < m; ++s) {
            hashes[s] = HashCombine(hashes[s], col[s]);
          }
        }
        // Phase 3: overlap the probes' cache misses.
        for (uint32_t s = 0; s < m; ++s) index->PrefetchHash(hashes[s]);
        // Phase 4: probe with the precomputed hashes and materialize.
        Value key_buf[32];
        for (uint32_t s = 0; s < m; ++s) {
          for (int k = 0; k < kn; ++k) {
            key_buf[k] = keys[static_cast<size_t>(k) * kProbeBatch + s];
          }
          ColumnIndex::Probe probe = index->ProbeRangeHashed(
              hashes[s], key_buf, kn, probe_input.begin, probe_input.end);
          uint32_t row_id;
          bool rebound = false;
          while (probe.Next(&row_id)) {
            if (!rebound) {
              // Restore this survivor's scan bindings (phase 1 left the
              // binding buffer at the batch's last row).
              for (int c = 0; c < scan_arity; ++c) {
                const PlanPos& pos = scan.positions[c];
                if (pos.kind == PlanPos::Kind::kFree) {
                  bindings_[pos.var] = store.cell(rows[s], c);
                }
              }
              rebound = true;
            }
            TryRow(1, probe_step, probe_rel, row_id);
          }
        }
      }
      base += n;
    }
  }

  void Step(size_t step_no) {
    if (step_no == compiled_.steps_.size()) {
      Fire();
      return;
    }
    const PlanStep& step = compiled_.steps_[step_no];
    const AtomInput& input = inputs_[step.body_index];
    const Relation& rel = *input.relation;

    if (step.index_mask != 0) {
      // Probe the index on the bound columns; the key values are hashed
      // in place (no Tuple is built).
      Value key_buf[32];
      int kn = 0;
      for (size_t c = 0; c < step.positions.size(); ++c) {
        if (!(step.index_mask & (1u << c))) continue;
        const PlanPos& pos = step.positions[c];
        key_buf[kn++] = pos.kind == PlanPos::Kind::kConst
                            ? pos.value
                            : bindings_[pos.var];
      }
      const ColumnIndex* index = rel.GetIndex(step.index_mask);
      assert(index != nullptr &&
             "index missing; evaluator must EnsureIndex first");
      // The index may lag behind rows appended after the evaluator froze
      // this round's scan bounds, but it must cover the probed range.
      assert(index->built_upto() >= input.end);
      ColumnIndex::Probe probe =
          index->ProbeRange(key_buf, kn, input.begin, input.end);
      uint32_t row_id;
      while (probe.Next(&row_id)) {
        TryRow(step_no, step, rel, row_id);
      }
    } else {
      for (size_t i = input.begin; i < input.end; ++i) {
        TryRow(step_no, step, rel, i);
      }
    }
  }

  void TryRow(size_t step_no, const PlanStep& step, const Relation& rel,
              size_t row) {
    ++stats_->rows_examined;
    // Verify non-key positions and bind fresh variables; cells are read
    // straight out of the column chunks (no row is materialized).
    for (size_t c = 0; c < step.positions.size(); ++c) {
      const PlanPos& pos = step.positions[c];
      switch (pos.kind) {
        case PlanPos::Kind::kConst:
          if (!(step.index_mask & (1u << c)) &&
              rel.cell(row, static_cast<int>(c)) != pos.value)
            return;
          break;
        case PlanPos::Kind::kBound:
          if (!(step.index_mask & (1u << c)) &&
              rel.cell(row, static_cast<int>(c)) != bindings_[pos.var])
            return;
          break;
        case PlanPos::Kind::kFree:
          bindings_[pos.var] = rel.cell(row, static_cast<int>(c));
          break;
      }
    }
    // Check constraints that just became fully bound.
    for (int ci : step.constraints_ready) {
      if (!CheckConstraint(ci)) return;
    }
    Step(step_no + 1);
  }

  bool CheckConstraint(int ci) {
    const HashConstraint& c = compiled_.rule_.constraints[ci];
    const std::vector<int>& ids = compiled_.constraint_var_ids_[ci];
    Value vals[32];
    for (size_t i = 0; i < ids.size(); ++i) vals[i] = bindings_[ids[i]];
    assert(constraint_eval_ != nullptr);
    return constraint_eval_->Accepts(c.function, vals,
                                     static_cast<int>(ids.size()), c.target);
  }

  void Fire() {
    const auto& recipe = compiled_.head_recipe_;
    Value buf[32];
    for (size_t c = 0; c < recipe.size(); ++c) {
      buf[c] = recipe[c].kind == PlanPos::Kind::kConst
                   ? recipe[c].value
                   : bindings_[recipe[c].var];
    }
    ++stats_->firings;
    // Per-bucket work accounting for adaptive overlays (no-op on the
    // plain registry); the constraint vars are still bound here.
    for (size_t ci = 0; ci < compiled_.rule_.constraints.size(); ++ci) {
      const HashConstraint& c = compiled_.rule_.constraints[ci];
      const std::vector<int>& ids = compiled_.constraint_var_ids_[ci];
      Value vals[32];
      for (size_t i = 0; i < ids.size(); ++i) vals[i] = bindings_[ids[i]];
      constraint_eval_->ChargeFiring(c.function, vals,
                                     static_cast<int>(ids.size()));
    }
    int n = static_cast<int>(recipe.size());
    if constexpr (std::is_invocable_v<Sink&, const Value*, int>) {
      sink_(static_cast<const Value*>(buf), n);
    } else {
      sink_(Tuple(buf, n));
    }
  }

  const CompiledRule& compiled_;
  const std::vector<AtomInput>& inputs_;
  const ConstraintEvaluator* constraint_eval_;
  Sink& sink_;
  ExecStats* stats_;
  JoinScratch* scratch_;
  std::vector<Value>& bindings_;
};

// Executes a compiled rule.
class JoinExecutor {
 public:
  // `inputs[i]` feeds the rule's body atom i (original body order).
  // `constraint_eval` may be null iff the rule has no constraints.
  // `sink` is called once per successful firing, either with
  // (const Value* values, int arity) — preferred, allocation-free — or
  // with the instantiated head `Tuple` if that's all it accepts. It may
  // deduplicate internally. `scratch`, when supplied, carries the
  // binding buffer across calls.
  template <typename Sink>
  static void Execute(const CompiledRule& compiled,
                      const std::vector<AtomInput>& inputs,
                      const ConstraintEvaluator* constraint_eval, Sink&& sink,
                      ExecStats* stats, JoinScratch* scratch = nullptr) {
    assert(inputs.size() == compiled.rule().body.size());
    JoinScratch local;
    JoinScratch* s = scratch != nullptr ? scratch : &local;
    JoinRunner<std::remove_reference_t<Sink>> runner(
        compiled, inputs, constraint_eval, sink, stats, s);
    runner.Run();
  }

  // Type-erased convenience for cold callers and existing tests.
  static void Execute(const CompiledRule& compiled,
                      const std::vector<AtomInput>& inputs,
                      const ConstraintEvaluator* constraint_eval,
                      const std::function<void(const Tuple&)>& sink,
                      ExecStats* stats);
};

}  // namespace pdatalog

#endif  // PDATALOG_EVAL_PLAN_H_
