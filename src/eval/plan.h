// Rule compilation and join execution.
//
// A rule body is compiled once into a `CompiledRule`: an ordered sequence
// of steps, one per body atom, each annotated with which argument
// positions are constants, already-bound variables, or fresh variables.
// Steps with at least one bound position probe a hash index on the bound
// columns; steps with none scan.
//
// The same compiled rule is executed in different *modes* by the
// evaluators: the caller supplies, per body atom, the relation to read
// and the row range [begin, end) to consider. This is how semi-naive
// delta variants and the parallel workers' local relations reuse one
// compilation path.
//
// `JoinExecutor::Execute` is a template over the sink callable so the
// per-firing dispatch inlines; a `std::function` overload remains for
// callers that don't sit on a hot path. Probes go through
// `ColumnIndex::ProbeRange`, which hashes the bound values in place —
// the probe path performs no heap allocation.
//
// Hash constraints (the paper's `h(v(r)) = i` conjuncts) are checked as
// soon as all their variables are bound, through a ConstraintEvaluator
// supplied by the caller (the discriminating-function registry in core/).
#ifndef PDATALOG_EVAL_PLAN_H_
#define PDATALOG_EVAL_PLAN_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "datalog/ast.h"
#include "datalog/validate.h"
#include "storage/relation.h"
#include "util/status.h"

namespace pdatalog {

// Evaluates hash constraints. Implemented by
// core/discriminating.h:DiscriminatingRegistry.
class ConstraintEvaluator {
 public:
  virtual ~ConstraintEvaluator() = default;

  // Returns the processor id assigned by discriminating function
  // `function` to the ground sequence `values[0..n)`.
  virtual int Evaluate(int function, const Value* values, int n) const = 0;
};

// Where each argument position of a step (or the head) gets its value.
struct PlanPos {
  enum class Kind { kConst, kBound, kFree };
  Kind kind;
  Value value = 0;  // kConst: the constant symbol id
  int var = -1;     // kBound/kFree: dense rule-local variable id
};

struct PlanStep {
  int body_index;    // index of this atom in the original rule body
  Symbol predicate;
  uint32_t index_mask;  // columns with kConst/kBound positions
  std::vector<PlanPos> positions;
  // Constraints (indices into rule.constraints) that become fully bound
  // after this step and must be checked here.
  std::vector<int> constraints_ready;
};

// A rule compiled for execution. Owns a copy of the rule.
class CompiledRule {
 public:
  // Compiles `rule`, ordering body atoms greedily by number of bound
  // positions. `preferred_first` (a body index, or -1) forces that atom
  // to be joined first — evaluators pass the delta atom here.
  // `greedy_order` = false keeps the remaining atoms in textual body
  // order (the ablation baseline; see bench_ablation).
  static StatusOr<CompiledRule> Compile(const Rule& rule,
                                        int preferred_first = -1,
                                        bool greedy_order = true);

  const Rule& rule() const { return rule_; }
  int num_vars() const { return num_vars_; }
  const std::vector<PlanStep>& steps() const { return steps_; }
  const std::vector<PlanPos>& head_recipe() const { return head_recipe_; }

  // (predicate, column mask) pairs for which indexes must exist and
  // cover all scanned rows before Execute() runs.
  const std::vector<std::pair<Symbol, uint32_t>>& required_indexes() const {
    return required_indexes_;
  }

  // The variable ids (in rule-local numbering) of `vars`; -1 for names
  // that do not occur in the rule body.
  std::vector<int> VarIds(const std::vector<Symbol>& vars) const;

  // Per constraint (parallel to rule().constraints): dense variable ids
  // of its discriminating sequence.
  const std::vector<std::vector<int>>& constraint_var_ids() const {
    return constraint_var_ids_;
  }

  // Human-readable access plan (EXPLAIN output), e.g.
  //   anc(X, Y) :- par(X, Z), anc_in(Z, Y), h(Z) = 0.
  //     1. scan anc_in(Z, Y)            [check h(Z) = 0]
  //     2. probe par(X, Z) on (Z)
  //     emit anc(X, Y)
  std::string DebugString(const SymbolTable& symbols) const;

 private:
  Rule rule_;
  int num_vars_ = 0;
  std::vector<Symbol> var_names_;  // dense id -> symbol
  std::vector<PlanStep> steps_;
  std::vector<PlanPos> head_recipe_;
  // Per constraint: dense var ids of its discriminating sequence.
  std::vector<std::vector<int>> constraint_var_ids_;
  std::vector<std::pair<Symbol, uint32_t>> required_indexes_;

  template <typename Sink>
  friend class JoinRunner;
};

// One body atom's data source for a particular execution.
struct AtomInput {
  const Relation* relation = nullptr;
  size_t begin = 0;
  size_t end = 0;
};

// Statistics of one Execute() call.
struct ExecStats {
  // Successful ground substitutions (Definition 4 "successful firings"):
  // complete bindings satisfying every body atom and constraint. Counted
  // whether or not the derived head tuple was already known.
  uint64_t firings = 0;
  // Index probes + scan rows examined; a rough work measure.
  uint64_t rows_examined = 0;
};

// Reusable per-caller scratch: holds the variable binding buffer so
// repeated Execute() calls (one per rule variant per round) don't
// reallocate it. A default-constructed scratch works for any rule.
struct JoinScratch {
  std::vector<Value> bindings;
};

// Recursive nested-loop/index join over the compiled steps, templated
// over the sink so firings dispatch without std::function indirection.
// The sink is invoked either as sink(const Value*, int) — the raw head
// values, valid only during the call — or as sink(const Tuple&) if it
// only accepts tuples.
template <typename Sink>
class JoinRunner {
 public:
  JoinRunner(const CompiledRule& compiled, const std::vector<AtomInput>& inputs,
             const ConstraintEvaluator* constraint_eval, Sink& sink,
             ExecStats* stats, std::vector<Value>* bindings)
      : compiled_(compiled),
        inputs_(inputs),
        constraint_eval_(constraint_eval),
        sink_(sink),
        stats_(stats),
        bindings_(*bindings) {
    bindings_.resize(compiled.num_vars());
  }

  void Run() { Step(0); }

 private:
  void Step(size_t step_no) {
    if (step_no == compiled_.steps_.size()) {
      Fire();
      return;
    }
    const PlanStep& step = compiled_.steps_[step_no];
    const AtomInput& input = inputs_[step.body_index];
    const Relation& rel = *input.relation;

    if (step.index_mask != 0) {
      // Probe the index on the bound columns; the key values are hashed
      // in place (no Tuple is built).
      Value key_buf[32];
      int kn = 0;
      for (size_t c = 0; c < step.positions.size(); ++c) {
        if (!(step.index_mask & (1u << c))) continue;
        const PlanPos& pos = step.positions[c];
        key_buf[kn++] = pos.kind == PlanPos::Kind::kConst
                            ? pos.value
                            : bindings_[pos.var];
      }
      const ColumnIndex* index = rel.GetIndex(step.index_mask);
      assert(index != nullptr &&
             "index missing; evaluator must EnsureIndex first");
      // The index may lag behind rows appended after the evaluator froze
      // this round's scan bounds, but it must cover the probed range.
      assert(index->built_upto() >= input.end);
      ColumnIndex::Probe probe =
          index->ProbeRange(key_buf, kn, input.begin, input.end);
      uint32_t row_id;
      while (probe.Next(&row_id)) {
        TryRow(step_no, step, rel.row(row_id));
      }
    } else {
      for (size_t i = input.begin; i < input.end; ++i) {
        TryRow(step_no, step, rel.row(i));
      }
    }
  }

  void TryRow(size_t step_no, const PlanStep& step, const Tuple& row) {
    ++stats_->rows_examined;
    // Verify non-key positions and bind fresh variables.
    for (size_t c = 0; c < step.positions.size(); ++c) {
      const PlanPos& pos = step.positions[c];
      switch (pos.kind) {
        case PlanPos::Kind::kConst:
          if (!(step.index_mask & (1u << c)) && row[c] != pos.value) return;
          break;
        case PlanPos::Kind::kBound:
          if (!(step.index_mask & (1u << c)) && row[c] != bindings_[pos.var])
            return;
          break;
        case PlanPos::Kind::kFree:
          bindings_[pos.var] = row[c];
          break;
      }
    }
    // Check constraints that just became fully bound.
    for (int ci : step.constraints_ready) {
      if (!CheckConstraint(ci)) return;
    }
    Step(step_no + 1);
  }

  bool CheckConstraint(int ci) {
    const HashConstraint& c = compiled_.rule_.constraints[ci];
    const std::vector<int>& ids = compiled_.constraint_var_ids_[ci];
    Value vals[32];
    for (size_t i = 0; i < ids.size(); ++i) vals[i] = bindings_[ids[i]];
    assert(constraint_eval_ != nullptr);
    return constraint_eval_->Evaluate(c.function, vals,
                                      static_cast<int>(ids.size())) ==
           c.target;
  }

  void Fire() {
    const auto& recipe = compiled_.head_recipe_;
    Value buf[32];
    for (size_t c = 0; c < recipe.size(); ++c) {
      buf[c] = recipe[c].kind == PlanPos::Kind::kConst
                   ? recipe[c].value
                   : bindings_[recipe[c].var];
    }
    ++stats_->firings;
    int n = static_cast<int>(recipe.size());
    if constexpr (std::is_invocable_v<Sink&, const Value*, int>) {
      sink_(static_cast<const Value*>(buf), n);
    } else {
      sink_(Tuple(buf, n));
    }
  }

  const CompiledRule& compiled_;
  const std::vector<AtomInput>& inputs_;
  const ConstraintEvaluator* constraint_eval_;
  Sink& sink_;
  ExecStats* stats_;
  std::vector<Value>& bindings_;
};

// Executes a compiled rule.
class JoinExecutor {
 public:
  // `inputs[i]` feeds the rule's body atom i (original body order).
  // `constraint_eval` may be null iff the rule has no constraints.
  // `sink` is called once per successful firing, either with
  // (const Value* values, int arity) — preferred, allocation-free — or
  // with the instantiated head `Tuple` if that's all it accepts. It may
  // deduplicate internally. `scratch`, when supplied, carries the
  // binding buffer across calls.
  template <typename Sink>
  static void Execute(const CompiledRule& compiled,
                      const std::vector<AtomInput>& inputs,
                      const ConstraintEvaluator* constraint_eval, Sink&& sink,
                      ExecStats* stats, JoinScratch* scratch = nullptr) {
    assert(inputs.size() == compiled.rule().body.size());
    JoinScratch local;
    JoinScratch* s = scratch != nullptr ? scratch : &local;
    JoinRunner<std::remove_reference_t<Sink>> runner(
        compiled, inputs, constraint_eval, sink, stats, &s->bindings);
    runner.Run();
  }

  // Type-erased convenience for cold callers and existing tests.
  static void Execute(const CompiledRule& compiled,
                      const std::vector<AtomInput>& inputs,
                      const ConstraintEvaluator* constraint_eval,
                      const std::function<void(const Tuple&)>& sink,
                      ExecStats* stats);
};

}  // namespace pdatalog

#endif  // PDATALOG_EVAL_PLAN_H_
