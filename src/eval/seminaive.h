// Sequential semi-naive bottom-up evaluation (Section 2/3 of the paper:
// the baseline whose set of ground substitutions the parallel schemes
// partition).
#ifndef PDATALOG_EVAL_SEMINAIVE_H_
#define PDATALOG_EVAL_SEMINAIVE_H_

#include <vector>

#include "datalog/analysis.h"
#include "eval/plan.h"
#include "storage/database.h"

namespace pdatalog {

class TraceRing;  // obs/trace.h

// Evaluator knobs. Defaults reproduce the paper's setting; the
// alternatives exist for the ablation benches.
struct EvalOptions {
  // false: join body atoms in textual order instead of most-bound-first.
  bool greedy_join_order = true;
  // true: evaluate stratum by stratum (SCCs of the dependency graph in
  // topological order; see eval/stratify.h) so rules never rerun while
  // predicates they depend on, but do not feed, are still growing.
  bool stratified = false;
  // Observability: when set, the evaluator records init/probe phase
  // spans and round instants on `ring`. The ring must belong to the
  // calling thread; null (the default) disables tracing.
  TraceRing* trace = nullptr;
};

// Aggregate statistics of one evaluation.
struct EvalStats {
  int rounds = 0;
  // Successful ground substitutions across all rules (Definition 4).
  uint64_t firings = 0;
  // Distinct tuples added to derived relations.
  uint64_t tuples_inserted = 0;
  uint64_t rows_examined = 0;
};

// A program compiled for (semi-)naive evaluation: for every rule, a
// full variant plus one delta variant per derived body atom.
class CompiledProgram {
 public:
  struct RuleVariants {
    CompiledRule full;
    // (body index of the delta atom, compiled variant with that atom
    // joined first).
    std::vector<std::pair<int, CompiledRule>> deltas;
    bool has_derived_body = false;
  };

  static StatusOr<CompiledProgram> Compile(const Program& program,
                                           const ProgramInfo& info,
                                           const EvalOptions& options = {});

  const std::vector<RuleVariants>& rules() const { return rules_; }
  // Union of all variants' required (predicate, mask) indexes.
  const std::vector<std::pair<Symbol, uint32_t>>& required_indexes() const {
    return required_indexes_;
  }

 private:
  std::vector<RuleVariants> rules_;
  std::vector<std::pair<Symbol, uint32_t>> required_indexes_;
};

// Evaluates `program` over the facts already loaded in `db`, writing
// derived relations into `db`. `constraint_eval` must be non-null iff
// any rule carries hash constraints (used by the parallel workers'
// local programs; plain programs pass nullptr).
Status SemiNaiveEvaluate(const Program& program, const ProgramInfo& info,
                         Database* db, EvalStats* stats,
                         const ConstraintEvaluator* constraint_eval = nullptr,
                         const EvalOptions& options = {});

}  // namespace pdatalog

#endif  // PDATALOG_EVAL_SEMINAIVE_H_
