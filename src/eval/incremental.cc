#include "eval/incremental.h"

namespace pdatalog {

StatusOr<IncrementalEvaluator> IncrementalEvaluator::Create(
    const Program& program, const ProgramInfo& info) {
  IncrementalEvaluator evaluator(&program, &info);

  // Compile with *every* predicate delta-tracked: base atoms get delta
  // variants too, so newly added facts drive rounds exactly like newly
  // derived tuples.
  ProgramInfo all_delta = info;
  for (Symbol p : info.predicates) {
    all_delta.derived.insert(p);
  }
  all_delta.base.clear();
  StatusOr<CompiledProgram> compiled =
      CompiledProgram::Compile(program, all_delta);
  if (!compiled.ok()) return compiled.status();
  evaluator.compiled_ = std::move(*compiled);

  for (Symbol p : info.predicates) {
    evaluator.db_.GetOrCreate(p, info.arity.at(p));
    evaluator.marks_.emplace(p, Watermark{});
  }
  return evaluator;
}

StatusOr<bool> IncrementalEvaluator::AddFact(Symbol predicate,
                                             const Tuple& tuple) {
  if (info_->IsDerived(predicate)) {
    return Status::InvalidArgument(
        "cannot add facts for derived predicate '" +
        program_->symbols->Name(predicate) + "'");
  }
  Relation* rel = db_.Find(predicate);
  if (rel == nullptr || rel->arity() != tuple.arity()) {
    return Status::InvalidArgument("unknown predicate or arity mismatch");
  }
  return rel->Insert(tuple);
}

StatusOr<EvalStats> IncrementalEvaluator::Evaluate() {
  EvalStats batch;
  ExecStats exec;

  // Rules with empty bodies (programmatically built fact-rules) fire
  // once, on the first Evaluate() only.
  if (first_run_) {
    first_run_ = false;
    for (size_t r = 0; r < program_->rules.size(); ++r) {
      const Rule& rule = program_->rules[r];
      if (!rule.body.empty()) continue;
      Relation* head_rel = db_.Find(rule.head.predicate);
      JoinExecutor::Execute(
          compiled_.rules()[r].full, {}, nullptr,
          [&](const Value* values, int n) {
            if (head_rel->InsertView(values, n)) ++batch.tuples_inserted;
          },
          &exec, &scratch_);
    }
  }

  while (true) {
    // Freeze this round's windows; anything appended since the last
    // round (new facts or derived tuples) becomes the delta.
    bool any_delta = false;
    for (auto& [p, mark] : marks_) {
      mark.cur_end = db_.Find(p)->size();
      if (mark.cur_end > mark.old_end) any_delta = true;
    }
    if (!any_delta) break;
    ++batch.rounds;

    for (const auto& [pred, mask] : compiled_.required_indexes()) {
      db_.Find(pred)->EnsureIndex(mask);
    }

    for (size_t r = 0; r < program_->rules.size(); ++r) {
      const Rule& rule = program_->rules[r];
      const auto& variants = compiled_.rules()[r];
      Relation* head_rel = db_.Find(rule.head.predicate);
      for (const auto& [delta_idx, delta_rule] : variants.deltas) {
        std::vector<AtomInput> inputs(rule.body.size());
        bool empty_delta = false;
        for (size_t b = 0; b < rule.body.size(); ++b) {
          const Relation* rel = db_.Find(rule.body[b].predicate);
          const Watermark& mark = marks_.at(rule.body[b].predicate);
          if (static_cast<int>(b) == delta_idx) {
            inputs[b] = AtomInput{rel, mark.old_end, mark.cur_end};
            if (mark.old_end == mark.cur_end) empty_delta = true;
          } else if (static_cast<int>(b) < delta_idx) {
            inputs[b] = AtomInput{rel, 0, mark.old_end};
          } else {
            inputs[b] = AtomInput{rel, 0, mark.cur_end};
          }
        }
        if (empty_delta) continue;
        JoinExecutor::Execute(
            delta_rule, inputs, nullptr,
            [&](const Value* values, int n) {
              if (head_rel->InsertView(values, n)) ++batch.tuples_inserted;
            },
            &exec, &scratch_);
      }
    }

    for (auto& [p, mark] : marks_) {
      mark.old_end = mark.cur_end;
    }
  }

  batch.firings = exec.firings;
  batch.rows_examined = exec.rows_examined;
  stats_.rounds += batch.rounds;
  stats_.firings += batch.firings;
  stats_.tuples_inserted += batch.tuples_inserted;
  stats_.rows_examined += batch.rows_examined;
  return batch;
}

}  // namespace pdatalog
