#include "eval/naive.h"

namespace pdatalog {

Status NaiveEvaluate(const Program& program, const ProgramInfo& info,
                     Database* db, EvalStats* stats) {
  StatusOr<CompiledProgram> compiled = CompiledProgram::Compile(program, info);
  if (!compiled.ok()) return compiled.status();

  for (Symbol p : info.predicates) {
    db->GetOrCreate(p, info.arity.at(p));
  }

  ExecStats exec_stats;
  JoinScratch scratch;
  bool grew = true;
  while (grew) {
    grew = false;
    ++stats->rounds;
    for (const auto& [pred, mask] : compiled->required_indexes()) {
      db->GetOrCreate(pred, info.arity.at(pred)).EnsureIndex(mask);
    }
    // Snapshot sizes so tuples derived this round are visible only next
    // round (Jacobi iteration; simplest correct naive formulation).
    std::unordered_map<Symbol, size_t> snapshot;
    for (Symbol p : info.predicates) snapshot[p] = db->Find(p)->size();

    for (size_t r = 0; r < program.rules.size(); ++r) {
      const Rule& rule = program.rules[r];
      Relation* head_rel = db->Find(rule.head.predicate);
      std::vector<AtomInput> inputs(rule.body.size());
      for (size_t i = 0; i < rule.body.size(); ++i) {
        const Relation* rel = db->Find(rule.body[i].predicate);
        inputs[i] = AtomInput{rel, 0, snapshot.at(rule.body[i].predicate)};
      }
      JoinExecutor::Execute(compiled->rules()[r].full, inputs,
                            /*constraint_eval=*/nullptr,
                            [&](const Value* values, int n) {
                              if (head_rel->InsertView(values, n)) {
                                ++stats->tuples_inserted;
                                grew = true;
                              }
                            },
                            &exec_stats, &scratch);
    }
  }

  stats->firings += exec_stats.firings;
  stats->rows_examined += exec_stats.rows_examined;
  return Status::Ok();
}

}  // namespace pdatalog
