// The serving engine's text line protocol, shared by the stdio loop
// (`pdatalog --serve`) and the socket listener (`--serve=PORT`), plus
// the HTTP telemetry endpoint (`--telemetry-port=P`).
//
// One request per line; every request yields a reply whose *last* line
// starts with "ok" or "err" (query bindings and stats tables precede
// it), so clients can frame replies without counting bytes:
//
//   ?- anc(alice, X).      query; binding lines, then "ok <count>"
//   +par(ed, fred).        enqueue a base-fact update; "ok"
//   !flush                 wait until all updates applied; "ok epoch <E>"
//   !stats                 stats report lines, then "ok"
//   !health                "ok health ok" or "ok health degraded (...)"
//   !watch [SEC [COUNT]]   stream one "watch ..." line per interval
//                          (COUNT lines, 0/omitted = until disconnect),
//                          then "ok"
//   !snapshot DIR          save the current snapshot; "ok saved <n> relations"
//   !quit                  "ok bye" and closes the session
//
// Blank lines are ignored. Anything else — malformed atoms, unknown
// verbs, arbitrary bytes — produces a clean "err <reason>" reply; the
// handler never crashes on untrusted input (fuzzed in tests/fuzz_test).
//
// `!watch` is the one verb that streams: HandleRequest returns an empty
// text with the watch fields set, and the *transport* runs RunWatch to
// emit the lines — HandleRequest itself stays total and non-blocking,
// which is what the fuzzer and the framing contract require.
#ifndef PDATALOG_SERVER_PROTOCOL_H_
#define PDATALOG_SERVER_PROTOCOL_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/engine.h"
#include "util/status.h"

namespace pdatalog {

struct ProtocolOptions {
  // Permits `!snapshot DIR` to write the local filesystem. Off for
  // untrusted transports (and the fuzzer).
  bool allow_snapshot = true;
};

struct ProtocolReply {
  // Full reply text, newline-terminated; empty for ignored blank lines.
  std::string text;
  // True after `!quit`: the transport should close the session.
  bool quit = false;
  // True after `!watch`: text is empty and the transport should stream
  // watch_count lines (0 = unbounded) every watch_interval_ms, then
  // write the closing "ok" line — see RunWatch.
  bool watch = false;
  int watch_interval_ms = 0;
  uint64_t watch_count = 0;
};

// Handles one request line (no trailing newline required; a trailing
// '\r' is stripped). Total over arbitrary input; never blocks beyond a
// `!flush`.
ProtocolReply HandleRequest(ServerEngine* engine, std::string_view line,
                            const ProtocolOptions& options = {});

// Streams a `!watch` session: one WatchLine per interval through
// `write_line` (return false to stop — client disconnected), `count`
// lines total (0 = until write failure or abort), then the closing
// "ok\n". `aborted`, when given, is polled between 50 ms sleep slices
// so a server Stop() is not held up by a long interval.
void RunWatch(ServerEngine* engine, int interval_ms, uint64_t count,
              const std::function<bool(std::string_view)>& write_line,
              const std::function<bool()>& aborted = nullptr);

// Reads request lines from `in` until EOF or `!quit`, writing each
// reply to `out` (flushed per request, for interactive use).
void ServeLoop(ServerEngine* engine, std::istream& in, std::ostream& out,
               const ProtocolOptions& options = {});

// A minimal loopback TCP listener: binds 127.0.0.1, accepts on a
// background thread, and runs one connection thread per client (port 0
// binds an ephemeral port; port() reports it). Subclasses provide the
// per-connection conversation; this class owns every fd and joins every
// thread on Stop(). Both the line-protocol server and the telemetry
// HTTP endpoint are instances.
class SocketListener {
 public:
  virtual ~SocketListener();
  SocketListener(const SocketListener&) = delete;
  SocketListener& operator=(const SocketListener&) = delete;

  // Binds and starts accepting. Call at most once.
  Status Start(int port);

  // The bound port (after a successful Start).
  int port() const { return port_; }

  // Closes the listener and every open connection, then joins all
  // threads. Idempotent. Subclass destructors must call it (so no
  // connection thread can enter a destroyed override).
  void Stop();

 protected:
  SocketListener() = default;

  // One client conversation, run on its own thread; `fd` is closed by
  // the caller afterwards. Stop() shuts the socket down to wake blocked
  // reads; long non-blocking work should poll stopping().
  virtual void HandleConnection(int fd) = 0;

  bool stopping() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stopping_;
  }

 private:
  void AcceptLoop();
  void ConnectionThread(int fd);

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  mutable std::mutex mu_;  // guards connections_/threads_/stopping_
  bool stopping_ = false;
  std::vector<int> connections_;
  std::vector<std::thread> threads_;
};

// The line protocol over TCP, one session per connection. Built for the
// CLI's `--serve=PORT` and the tests.
class SocketServer : public SocketListener {
 public:
  explicit SocketServer(ServerEngine* engine,
                        const ProtocolOptions& options = {});
  ~SocketServer() override;

 protected:
  void HandleConnection(int fd) override;

 private:
  ServerEngine* const engine_;
  const ProtocolOptions options_;
};

// The scrape endpoint (`--telemetry-port=P`): a deliberately minimal
// HTTP/1.0 responder, one request per connection.
//
//   GET /metrics  200, Prometheus text exposition (version 0.0.4) of a
//                 fresh telemetry sample plus the slow-query ring
//   GET /health   200 "ok" when healthy, 503 "degraded (...)" when not
//                 (load balancers key off the status code)
//   anything else 404 / 400
//
// Responses carry Content-Length and Connection: close; there is no
// keep-alive, chunking, or TLS — it serves curl and a Prometheus
// scraper on loopback, nothing more.
class TelemetryHttpServer : public SocketListener {
 public:
  explicit TelemetryHttpServer(ServerEngine* engine);
  ~TelemetryHttpServer() override;

 protected:
  void HandleConnection(int fd) override;

 private:
  ServerEngine* const engine_;
};

}  // namespace pdatalog

#endif  // PDATALOG_SERVER_PROTOCOL_H_
