// The serving engine's text line protocol, shared by the stdio loop
// (`pdatalog --serve`) and the socket listener (`--serve=PORT`).
//
// One request per line; every request yields a reply whose *last* line
// starts with "ok" or "err" (query bindings and stats tables precede
// it), so clients can frame replies without counting bytes:
//
//   ?- anc(alice, X).      query; binding lines, then "ok <count>"
//   +par(ed, fred).        enqueue a base-fact update; "ok"
//   !flush                 wait until all updates applied; "ok epoch <E>"
//   !stats                 stats report lines, then "ok"
//   !snapshot DIR          save the current snapshot; "ok saved <n> relations"
//   !quit                  "ok bye" and closes the session
//
// Blank lines are ignored. Anything else — malformed atoms, unknown
// verbs, arbitrary bytes — produces a clean "err <reason>" reply; the
// handler never crashes on untrusted input (fuzzed in tests/fuzz_test).
#ifndef PDATALOG_SERVER_PROTOCOL_H_
#define PDATALOG_SERVER_PROTOCOL_H_

#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "server/engine.h"
#include "util/status.h"

namespace pdatalog {

struct ProtocolOptions {
  // Permits `!snapshot DIR` to write the local filesystem. Off for
  // untrusted transports (and the fuzzer).
  bool allow_snapshot = true;
};

struct ProtocolReply {
  // Full reply text, newline-terminated; empty for ignored blank lines.
  std::string text;
  // True after `!quit`: the transport should close the session.
  bool quit = false;
};

// Handles one request line (no trailing newline required; a trailing
// '\r' is stripped). Total over arbitrary input.
ProtocolReply HandleRequest(ServerEngine* engine, std::string_view line,
                            const ProtocolOptions& options = {});

// Reads request lines from `in` until EOF or `!quit`, writing each
// reply to `out` (flushed per request, for interactive use).
void ServeLoop(ServerEngine* engine, std::istream& in, std::ostream& out,
               const ProtocolOptions& options = {});

// A minimal TCP listener on 127.0.0.1 running the same protocol, one
// thread per connection. Built for the CLI's `--serve=PORT` and the
// tests (port 0 binds an ephemeral port; port() reports it).
class SocketServer {
 public:
  explicit SocketServer(ServerEngine* engine,
                        const ProtocolOptions& options = {});
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  // Binds and starts accepting. Call at most once.
  Status Start(int port);

  // The bound port (after a successful Start).
  int port() const { return port_; }

  // Closes the listener and every open connection, then joins all
  // threads. Idempotent; the destructor calls it.
  void Stop();

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);

  ServerEngine* const engine_;
  const ProtocolOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;  // guards connections_/threads_/stopping_
  bool stopping_ = false;
  std::vector<int> connections_;
  std::vector<std::thread> threads_;
};

}  // namespace pdatalog

#endif  // PDATALOG_SERVER_PROTOCOL_H_
