#include "server/engine.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/report.h"
#include "datalog/parser.h"

namespace pdatalog {
namespace {

Tuple TupleFromGroundAtom(const Atom& atom) {
  std::vector<Value> values;
  values.reserve(atom.args.size());
  for (const Term& term : atom.args) values.push_back(term.sym);
  return Tuple(values.data(), static_cast<int>(values.size()));
}

}  // namespace

StatusOr<std::unique_ptr<ServerEngine>> ServerEngine::Create(
    std::string_view source, const ServerOptions& options) {
  if (options.max_batch == 0) {
    return Status::InvalidArgument("max_batch must be positive");
  }
  std::unique_ptr<ServerEngine> engine(new ServerEngine(options));

  StatusOr<Program> program = ParseProgram(source, &engine->symbols_);
  if (!program.ok()) return program.status();
  engine->program_ = std::move(*program);
  PDATALOG_RETURN_IF_ERROR(Validate(engine->program_, &engine->info_));

  StatusOr<IncrementalEvaluator> eval =
      IncrementalEvaluator::Create(engine->program_, engine->info_);
  if (!eval.ok()) return eval.status();
  engine->eval_.emplace(std::move(*eval));

  // The incremental evaluator starts from an empty database: the
  // program's own facts are the first "update batch".
  for (const Atom& fact : engine->program_.facts) {
    StatusOr<bool> added =
        engine->eval_->AddFact(fact.predicate, TupleFromGroundAtom(fact));
    if (!added.ok()) return added.status();
  }
  StatusOr<EvalStats> stats = engine->eval_->Evaluate();
  if (!stats.ok()) return stats.status();

  auto snapshot = std::make_shared<ServerSnapshot>();
  snapshot->epoch = 1;
  snapshot->view = DatabaseView::Freeze(engine->eval_->db());
  engine->snapshot_ = std::move(snapshot);
  engine->epoch_ = 1;

  if (options.trace) {
    engine->tracer_ =
        std::make_unique<Tracer>(1, options.trace_ring_capacity);
  }
  engine->maintenance_ = std::thread(&ServerEngine::MaintenanceLoop,
                                     engine.get());
  return engine;
}

ServerEngine::~ServerEngine() { Shutdown(); }

void ServerEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
}

std::shared_ptr<const ServerSnapshot> ServerEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

uint64_t ServerEngine::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

StatusOr<ParsedQuery> ServerEngine::Parse(std::string_view query_text) {
  std::lock_guard<std::mutex> lock(symbols_mu_);
  return ParseQuery(query_text, &symbols_);
}

StatusOr<QueryResult> ServerEngine::Query(const ParsedQuery& query) {
  std::shared_ptr<const ServerSnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = snapshot_;
  }
  const uint64_t begin = TraceRing::NowTicks();
  StatusOr<QueryResult> result = MatchQuery(query, snapshot->view);
  const uint64_t end = TraceRing::NowTicks();
  RecordQuery(begin, end, result.ok(),
              result.ok() ? result->bindings.size() : 0);
  return result;
}

StatusOr<QueryResult> ServerEngine::QueryText(std::string_view query_text) {
  StatusOr<ParsedQuery> query = Parse(query_text);
  if (!query.ok()) return query.status();
  return Query(*query);
}

std::string ServerEngine::Render(const QueryResult& result) const {
  std::lock_guard<std::mutex> lock(symbols_mu_);
  return result.ToString(symbols_);
}

void ServerEngine::RecordQuery(uint64_t begin_ticks, uint64_t end_ticks,
                               bool ok, size_t rows) {
  std::lock_guard<std::mutex> lock(mu_);
  query_hist_.Record(end_ticks - begin_ticks);
  metrics_.AddCounter("serve.queries", 1);
  if (ok) {
    metrics_.AddCounter("serve.query_rows", rows);
  } else {
    metrics_.AddCounter("serve.query_errors", 1);
  }
  if (tracer_ != nullptr) {
    // Reader threads share the engine ring; mu_ serializes the writes,
    // preserving the ring's single-writer contract.
    TraceRing* ring = tracer_->engine_ring();
    ring->Append(TraceEvent{begin_ticks, static_cast<uint32_t>(rows),
                            TracePhase::kQuery, TraceEventKind::kBegin});
    ring->Append(TraceEvent{end_ticks, 0, TracePhase::kQuery,
                            TraceEventKind::kEnd});
  }
}

Status ServerEngine::SubmitFactText(std::string_view fact_text) {
  // Parse as a one-clause program under the symbol lock; constants may
  // be new, the predicate must not be.
  std::string clause(fact_text);
  while (!clause.empty() &&
         (clause.back() == ' ' || clause.back() == '\t' ||
          clause.back() == '\n' || clause.back() == '\r')) {
    clause.pop_back();
  }
  if (clause.empty()) return Status::InvalidArgument("empty fact");
  if (clause.back() != '.') clause.push_back('.');

  Atom atom;
  {
    std::lock_guard<std::mutex> lock(symbols_mu_);
    StatusOr<Program> parsed = ParseProgram(clause, &symbols_);
    if (!parsed.ok()) return parsed.status();
    if (parsed->facts.size() != 1 || !parsed->rules.empty() ||
        !parsed->queries.empty()) {
      return Status::InvalidArgument("update must be a single ground fact");
    }
    atom = std::move(parsed->facts[0]);
  }
  if (!atom.IsGround()) {
    return Status::InvalidArgument("update must be ground (no variables)");
  }
  return SubmitFact(atom.predicate, TupleFromGroundAtom(atom));
}

Status ServerEngine::SubmitFact(Symbol predicate, Tuple tuple) {
  // Validate synchronously: enqueued facts must be infallible by the
  // time the maintenance thread absorbs them.
  auto arity_it = info_.arity.find(predicate);
  if (arity_it == info_.arity.end()) {
    std::lock_guard<std::mutex> lock(symbols_mu_);
    return Status::InvalidArgument("unknown predicate '" +
                                   symbols_.Name(predicate) + "'");
  }
  if (info_.IsDerived(predicate)) {
    std::lock_guard<std::mutex> lock(symbols_mu_);
    return Status::InvalidArgument("cannot update derived predicate '" +
                                   symbols_.Name(predicate) + "'");
  }
  if (arity_it->second != tuple.arity()) {
    std::lock_guard<std::mutex> lock(symbols_mu_);
    return Status::InvalidArgument(
        "arity mismatch for '" + symbols_.Name(predicate) + "': expected " +
        std::to_string(arity_it->second) + ", got " +
        std::to_string(tuple.arity()));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return Status::FailedPrecondition("server is shutting down");
    queue_.push_back(PendingFact{predicate, std::move(tuple)});
    ++submitted_;
    metrics_.AddCounter("serve.updates_submitted", 1);
  }
  queue_cv_.notify_one();
  return Status::Ok();
}

uint64_t ServerEngine::Flush() {
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t target = submitted_;
  // The maintenance loop drains the queue even after Shutdown, and
  // nothing enqueues after stop_, so applied_ always reaches target.
  applied_cv_.wait(lock, [&] { return applied_ >= target; });
  return epoch_;
}

void ServerEngine::MaintenanceLoop() {
  TraceRing* ring = tracer_ != nullptr ? tracer_->ring(0) : nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stop_ set and everything drained

    const size_t n = std::min(queue_.size(), options_.max_batch);
    std::vector<PendingFact> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();

    // Absorb and re-evaluate without the lock: readers keep answering
    // from the published snapshot, whose frozen prefix these appends
    // never touch.
    const uint64_t begin = TraceRing::NowTicks();
    uint64_t inserted = 0;
    {
      TraceScope apply(ring, TracePhase::kApply,
                       static_cast<uint32_t>(n));
      for (const PendingFact& fact : batch) {
        StatusOr<bool> added = eval_->AddFact(fact.predicate, fact.tuple);
        // SubmitFact validated predicate and arity; AddFact can only
        // report duplicate-vs-new here.
        if (added.ok() && *added) ++inserted;
      }
    }
    uint64_t derived = 0;
    bool eval_ok = true;
    {
      TraceScope maintain(ring, TracePhase::kMaintain);
      StatusOr<EvalStats> stats = eval_->Evaluate();
      if (stats.ok()) {
        derived = stats->tuples_inserted;
      } else {
        eval_ok = false;
      }
    }
    auto snapshot = std::make_shared<ServerSnapshot>();
    snapshot->view = DatabaseView::Freeze(eval_->db());
    const uint64_t end = TraceRing::NowTicks();

    lock.lock();
    snapshot->epoch = ++epoch_;
    snapshot_ = std::move(snapshot);
    applied_ += n;
    update_hist_.Record(end - begin);
    metrics_.AddCounter("serve.update_batches", 1);
    metrics_.AddCounter("serve.updates_applied", inserted);
    metrics_.AddCounter("serve.updates_duplicate", n - inserted);
    metrics_.AddCounter("serve.derived_inserted", derived);
    if (!eval_ok) metrics_.AddCounter("serve.maintain_errors", 1);
    applied_cv_.notify_all();
  }
}

StatusOr<size_t> ServerEngine::SaveSnapshot(const std::string& directory) {
  std::shared_ptr<const ServerSnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = snapshot_;
  }
  // Rendering constant names reads the symbol table.
  std::lock_guard<std::mutex> lock(symbols_mu_);
  return SaveDatabase(snapshot->view, symbols_, directory);
}

MetricsRegistry ServerEngine::MetricsCopy() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsRegistry copy = metrics_;
  copy.MergeHistogram("hist.query_ns", query_hist_);
  copy.MergeHistogram("hist.update_batch_ns", update_hist_);
  copy.SetGauge("serve.epoch", static_cast<double>(epoch_));
  copy.SetGauge("serve.pending",
                static_cast<double>(submitted_ - applied_));
  if (snapshot_ != nullptr) {
    copy.SetGauge("serve.snapshot_rows",
                  static_cast<double>(snapshot_->view.total_rows()));
  }
  return copy;
}

std::string ServerEngine::StatsReport() const {
  std::shared_ptr<const ServerSnapshot> snapshot;
  uint64_t pending = 0;
  MetricsRegistry metrics;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = snapshot_;
    pending = submitted_ - applied_;
    metrics = metrics_;
    metrics.MergeHistogram("hist.query_ns", query_hist_);
    metrics.MergeHistogram("hist.update_batch_ns", update_hist_);
  }
  std::string out =
      "epoch " + std::to_string(snapshot->epoch) + ": " +
      std::to_string(snapshot->view.relation_count()) + " relations, " +
      std::to_string(snapshot->view.total_rows()) + " rows\n";
  out += "queries " + std::to_string(metrics.counter("serve.queries")) +
         " (" + std::to_string(metrics.counter("serve.query_rows")) +
         " rows returned), updates " +
         std::to_string(metrics.counter("serve.updates_applied")) +
         " applied in " +
         std::to_string(metrics.counter("serve.update_batches")) +
         " batches (" +
         std::to_string(metrics.counter("serve.updates_duplicate")) +
         " duplicates, " + std::to_string(pending) + " pending), " +
         std::to_string(metrics.counter("serve.derived_inserted")) +
         " tuples derived\n";
  out += RenderHistogramTable(metrics);
  return out;
}

}  // namespace pdatalog
