#include "server/engine.h"

#include <algorithm>
#include <chrono>
#include <utility>
#include <vector>

#include "core/report.h"
#include "datalog/parser.h"
#include "util/table.h"

namespace pdatalog {
namespace {

Tuple TupleFromGroundAtom(const Atom& atom) {
  std::vector<Value> values;
  values.reserve(atom.args.size());
  for (const Term& term : atom.args) values.push_back(term.sym);
  return Tuple(values.data(), static_cast<int>(values.size()));
}

std::string MsCell(double ms) { return TextTable::Cell(ms, 2); }

}  // namespace

ServerEngine::ServerEngine(const ServerOptions& options)
    : options_(options),
      slow_query_ns_(options.slow_query_ms <= 0
                         ? 0
                         : static_cast<uint64_t>(options.slow_query_ms *
                                                 1e6)),
      query_window_(options.window_intervals),
      update_window_(options.window_intervals),
      slow_queries_(options.slow_ring),
      samples_(options.sample_ring) {}

StatusOr<std::unique_ptr<ServerEngine>> ServerEngine::Create(
    std::string_view source, const ServerOptions& options) {
  if (options.max_batch == 0) {
    return Status::InvalidArgument("max_batch must be positive");
  }
  if (options.sample_interval_ms < 0) {
    return Status::InvalidArgument("sample_interval_ms must be >= 0");
  }
  if (options.window_intervals < 1) {
    return Status::InvalidArgument("window_intervals must be >= 1");
  }
  if (options.slow_query_ms < 0) {
    return Status::InvalidArgument("slow_query_ms must be >= 0");
  }
  std::unique_ptr<ServerEngine> engine(new ServerEngine(options));

  StatusOr<Program> program = ParseProgram(source, &engine->symbols_);
  if (!program.ok()) return program.status();
  engine->program_ = std::move(*program);
  PDATALOG_RETURN_IF_ERROR(Validate(engine->program_, &engine->info_));

  StatusOr<IncrementalEvaluator> eval =
      IncrementalEvaluator::Create(engine->program_, engine->info_);
  if (!eval.ok()) return eval.status();
  engine->eval_.emplace(std::move(*eval));

  // The incremental evaluator starts from an empty database: the
  // program's own facts are the first "update batch".
  for (const Atom& fact : engine->program_.facts) {
    StatusOr<bool> added =
        engine->eval_->AddFact(fact.predicate, TupleFromGroundAtom(fact));
    if (!added.ok()) return added.status();
  }
  StatusOr<EvalStats> stats = engine->eval_->Evaluate();
  if (!stats.ok()) return stats.status();

  auto snapshot = std::make_shared<ServerSnapshot>();
  snapshot->epoch = 1;
  snapshot->publish_ticks = TraceRing::NowTicks();
  snapshot->view = DatabaseView::Freeze(engine->eval_->db());
  engine->snapshot_ = std::move(snapshot);
  engine->epoch_ = 1;

  if (options.trace) {
    engine->tracer_ =
        std::make_unique<Tracer>(1, options.trace_ring_capacity);
  }
  engine->maintenance_ = std::thread(&ServerEngine::MaintenanceLoop,
                                     engine.get());
  if (options.sample_interval_ms > 0) {
    engine->telemetry_ = std::thread(&ServerEngine::TelemetryLoop,
                                     engine.get());
  }
  return engine;
}

ServerEngine::~ServerEngine() { Shutdown(); }

void ServerEngine::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (maintenance_.joinable()) maintenance_.join();
  {
    std::lock_guard<std::mutex> lock(telemetry_mu_);
    telemetry_stop_ = true;
  }
  telemetry_cv_.notify_all();
  if (telemetry_.joinable()) telemetry_.join();
}

std::shared_ptr<const ServerSnapshot> ServerEngine::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return snapshot_;
}

uint64_t ServerEngine::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

StatusOr<ParsedQuery> ServerEngine::Parse(std::string_view query_text) {
  std::lock_guard<std::mutex> lock(symbols_mu_);
  return ParseQuery(query_text, &symbols_);
}

StatusOr<QueryResult> ServerEngine::Query(const ParsedQuery& query) {
  std::shared_ptr<const ServerSnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = snapshot_;
  }
  const uint64_t begin = TraceRing::NowTicks();
  StatusOr<QueryResult> result = MatchQuery(query, snapshot->view);
  const uint64_t end = TraceRing::NowTicks();
  RecordQuery(query, snapshot, begin, end, result.ok(),
              result.ok() ? result->bindings.size() : 0);
  return result;
}

StatusOr<QueryResult> ServerEngine::QueryText(std::string_view query_text) {
  StatusOr<ParsedQuery> query = Parse(query_text);
  if (!query.ok()) return query.status();
  return Query(*query);
}

std::string ServerEngine::Render(const QueryResult& result) const {
  std::lock_guard<std::mutex> lock(symbols_mu_);
  return result.ToString(symbols_);
}

void ServerEngine::RecordQuery(
    const ParsedQuery& query,
    const std::shared_ptr<const ServerSnapshot>& snapshot,
    uint64_t begin_ticks, uint64_t end_ticks, bool ok, size_t rows) {
  const uint64_t latency = end_ticks - begin_ticks;

  // Slow-query capture happens before the stats lock: rendering the
  // atom takes the symbol lock, and only queries already past the
  // threshold (rare by construction) pay for it.
  const bool slow = slow_query_ns_ != 0 && latency >= slow_query_ns_;
  SlowQueryRecord record;
  if (slow) {
    record.ticks = end_ticks;
    record.latency_ns = latency;
    record.epoch = snapshot->epoch;
    record.snapshot_age_ms =
        static_cast<double>(begin_ticks - snapshot->publish_ticks) / 1e6;
    const RelationView* scanned =
        snapshot->view.Find(query.atom.predicate);
    record.scan_rows = scanned == nullptr ? 0 : scanned->size();
    record.result_rows = rows;
    {
      std::lock_guard<std::mutex> lock(symbols_mu_);
      record.atom = ToString(query.atom, symbols_);
    }
  }

  std::lock_guard<std::mutex> lock(stats_mu_);
  query_hist_.Record(latency);
  query_window_.Record(latency);
  metrics_.AddCounter("serve.queries", 1);
  if (ok) {
    metrics_.AddCounter("serve.query_rows", rows);
  } else {
    metrics_.AddCounter("serve.query_errors", 1);
  }
  if (slow) {
    metrics_.AddCounter("serve.slow_queries", 1);
    slow_queries_.Add(std::move(record));
  }
  if (tracer_ != nullptr) {
    // Reader threads share the engine ring; stats_mu_ serializes the
    // writes, preserving the ring's single-writer contract. The end
    // event carries the snapshot epoch so trace spans name the
    // fixpoint version they answered from.
    TraceRing* ring = tracer_->engine_ring();
    ring->Append(TraceEvent{begin_ticks, static_cast<uint32_t>(rows),
                            TracePhase::kQuery, TraceEventKind::kBegin});
    ring->Append(TraceEvent{end_ticks,
                            static_cast<uint32_t>(snapshot->epoch),
                            TracePhase::kQuery, TraceEventKind::kEnd});
  }
}

Status ServerEngine::SubmitFactText(std::string_view fact_text) {
  // Parse as a one-clause program under the symbol lock; constants may
  // be new, the predicate must not be.
  std::string clause(fact_text);
  while (!clause.empty() &&
         (clause.back() == ' ' || clause.back() == '\t' ||
          clause.back() == '\n' || clause.back() == '\r')) {
    clause.pop_back();
  }
  if (clause.empty()) return Status::InvalidArgument("empty fact");
  if (clause.back() != '.') clause.push_back('.');

  Atom atom;
  {
    std::lock_guard<std::mutex> lock(symbols_mu_);
    StatusOr<Program> parsed = ParseProgram(clause, &symbols_);
    if (!parsed.ok()) return parsed.status();
    if (parsed->facts.size() != 1 || !parsed->rules.empty() ||
        !parsed->queries.empty()) {
      return Status::InvalidArgument("update must be a single ground fact");
    }
    atom = std::move(parsed->facts[0]);
  }
  if (!atom.IsGround()) {
    return Status::InvalidArgument("update must be ground (no variables)");
  }
  return SubmitFact(atom.predicate, TupleFromGroundAtom(atom));
}

Status ServerEngine::SubmitFact(Symbol predicate, Tuple tuple) {
  // Validate synchronously: enqueued facts must be infallible by the
  // time the maintenance thread absorbs them.
  auto arity_it = info_.arity.find(predicate);
  if (arity_it == info_.arity.end()) {
    std::lock_guard<std::mutex> lock(symbols_mu_);
    return Status::InvalidArgument("unknown predicate '" +
                                   symbols_.Name(predicate) + "'");
  }
  if (info_.IsDerived(predicate)) {
    std::lock_guard<std::mutex> lock(symbols_mu_);
    return Status::InvalidArgument("cannot update derived predicate '" +
                                   symbols_.Name(predicate) + "'");
  }
  if (arity_it->second != tuple.arity()) {
    std::lock_guard<std::mutex> lock(symbols_mu_);
    return Status::InvalidArgument(
        "arity mismatch for '" + symbols_.Name(predicate) + "': expected " +
        std::to_string(arity_it->second) + ", got " +
        std::to_string(tuple.arity()));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return Status::FailedPrecondition("server is shutting down");
    queue_.push_back(PendingFact{predicate, std::move(tuple),
                                 TraceRing::NowTicks()});
    ++submitted_;
  }
  queue_cv_.notify_one();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    metrics_.AddCounter("serve.updates_submitted", 1);
  }
  return Status::Ok();
}

uint64_t ServerEngine::Flush() {
  const uint64_t begin = TraceRing::NowTicks();
  uint64_t epoch;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t target = submitted_;
    // The maintenance loop drains the queue even after Shutdown, and
    // nothing enqueues after stop_, so applied_ always reaches target.
    applied_cv_.wait(lock, [&] { return applied_ >= target; });
    epoch = epoch_;
  }
  const uint64_t waited = TraceRing::NowTicks() - begin;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    flush_hist_.Record(waited);
    metrics_.AddCounter("serve.flushes", 1);
    metrics_.SetGauge("serve.flush_wait_ms",
                      static_cast<double>(waited) / 1e6);
  }
  return epoch;
}

void ServerEngine::MaintenanceLoop() {
  TraceRing* ring = tracer_ != nullptr ? tracer_->ring(0) : nullptr;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) break;  // stop_ set and everything drained

    const size_t n = std::min(queue_.size(), options_.max_batch);
    std::vector<PendingFact> batch;
    batch.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();

    // Absorb and re-evaluate without any lock: readers keep answering
    // from the published snapshot, whose frozen prefix these appends
    // never touch.
    const uint64_t begin = TraceRing::NowTicks();
    uint64_t inserted = 0;
    {
      TraceScope apply(ring, TracePhase::kApply,
                       static_cast<uint32_t>(n));
      for (const PendingFact& fact : batch) {
        StatusOr<bool> added = eval_->AddFact(fact.predicate, fact.tuple);
        // SubmitFact validated predicate and arity; AddFact can only
        // report duplicate-vs-new here.
        if (added.ok() && *added) ++inserted;
      }
    }
    uint64_t derived = 0;
    bool eval_ok = true;
    {
      TraceScope maintain(ring, TracePhase::kMaintain);
      StatusOr<EvalStats> stats = eval_->Evaluate();
      if (stats.ok()) {
        derived = stats->tuples_inserted;
      } else {
        eval_ok = false;
      }
    }
    auto snapshot = std::make_shared<ServerSnapshot>();
    snapshot->view = DatabaseView::Freeze(eval_->db());
    const uint64_t end = TraceRing::NowTicks();

    // Telemetry first, off the engine mutex: the batch's latency and
    // the lag of its oldest fact (enqueue -> publish).
    {
      std::lock_guard<std::mutex> stats(stats_mu_);
      update_hist_.Record(end - begin);
      update_window_.Record(end - begin);
      metrics_.AddCounter("serve.update_batches", 1);
      metrics_.AddCounter("serve.updates_applied", inserted);
      metrics_.AddCounter("serve.updates_duplicate", n - inserted);
      metrics_.AddCounter("serve.derived_inserted", derived);
      metrics_.SetGauge("serve.last_batch_lag_ms",
                        static_cast<double>(end -
                                            batch.front().enqueue_ticks) /
                            1e6);
      if (!eval_ok) metrics_.AddCounter("serve.maintain_errors", 1);
    }

    lock.lock();
    snapshot->epoch = ++epoch_;
    snapshot->publish_ticks = end;
    snapshot_ = std::move(snapshot);
    applied_ += n;
    applied_cv_.notify_all();
  }
}

void ServerEngine::TelemetryLoop() {
  std::unique_lock<std::mutex> lock(telemetry_mu_);
  while (!telemetry_stop_) {
    telemetry_cv_.wait_for(
        lock, std::chrono::milliseconds(options_.sample_interval_ms),
        [&] { return telemetry_stop_; });
    if (telemetry_stop_) break;
    lock.unlock();
    Sample(/*rotate=*/true);
    lock.lock();
  }
}

std::shared_ptr<const TelemetrySample> ServerEngine::SampleNow() {
  return Sample(/*rotate=*/false);
}

std::shared_ptr<const TelemetrySample> ServerEngine::Sample(bool rotate) {
  const uint64_t now = TraceRing::NowTicks();

  // Phase 1 — stats lock: O(1)-ish copies only (the registry is a few
  // dozen entries; histograms are fixed 64-bucket PODs).
  MetricsRegistry m;
  Histogram query, update, flush;
  Histogram query_window, update_window;
  uint64_t slow_total;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (rotate) {
      query_window_.Rotate();
      update_window_.Rotate();
    }
    m = metrics_;
    query = query_hist_;
    update = update_hist_;
    flush = flush_hist_;
    query_window = query_window_.WindowMerged();
    update_window = update_window_.WindowMerged();
    slow_total = slow_queries_.total();
  }

  // Phase 2 — engine mutex: scalar loads only. This is the sampler's
  // entire footprint on the hot lock.
  uint64_t epoch, queue_depth, pending, snapshot_rows = 0;
  double snapshot_age_ms = 0, maintain_lag_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    epoch = epoch_;
    queue_depth = queue_.size();
    pending = submitted_ - applied_;
    if (!queue_.empty()) {
      maintain_lag_ms =
          static_cast<double>(now - queue_.front().enqueue_ticks) / 1e6;
    }
    if (snapshot_ != nullptr) {
      snapshot_rows = snapshot_->view.total_rows();
      snapshot_age_ms =
          static_cast<double>(now - snapshot_->publish_ticks) / 1e6;
    }
  }

  // Phase 3 — no locks: merge, derive gauges.
  m.MergeHistogram("hist.query_ns", query);
  m.MergeHistogram("hist.update_batch_ns", update);
  if (!flush.empty()) m.MergeHistogram("hist.flush_wait_ns", flush);
  m.MergeHistogram("hist.query_window_ns", query_window);
  m.MergeHistogram("hist.update_batch_window_ns", update_window);
  m.SetGauge("serve.epoch", static_cast<double>(epoch));
  m.SetGauge("serve.queue_depth", static_cast<double>(queue_depth));
  m.SetGauge("serve.pending", static_cast<double>(pending));
  m.SetGauge("serve.snapshot_rows", static_cast<double>(snapshot_rows));
  m.SetGauge("serve.snapshot_age_ms", snapshot_age_ms);
  m.SetGauge("serve.maintain_lag_ms", maintain_lag_ms);
  m.SetGauge("serve.slow_queries_retained",
             static_cast<double>(std::min<uint64_t>(
                 slow_total, options_.slow_ring)));
  if (tracer_ != nullptr) {
    m.SetGauge("serve.trace_drops",
               static_cast<double>(tracer_->total_dropped()));
  }

  auto sample = std::make_shared<TelemetrySample>();
  sample->ticks = now;

  // Phase 4 — sample lock: window rates against the retained history,
  // then publish.
  {
    std::lock_guard<std::mutex> lock(samples_mu_);
    const uint64_t window_ns =
        static_cast<uint64_t>(options_.sample_interval_ms > 0
                                  ? options_.sample_interval_ms
                                  : 500) *
        static_cast<uint64_t>(options_.window_intervals) * 1000000ull;
    double window_qps = 0, window_update_rate = 0;
    std::shared_ptr<const TelemetrySample> oldest =
        samples_.OldestWithin(now, window_ns);
    if (oldest != nullptr && now > oldest->ticks) {
      const double dt = static_cast<double>(now - oldest->ticks) / 1e9;
      window_qps =
          static_cast<double>(m.counter("serve.queries") -
                              oldest->metrics.counter("serve.queries")) /
          dt;
      window_update_rate =
          static_cast<double>(
              m.counter("serve.updates_applied") -
              oldest->metrics.counter("serve.updates_applied")) /
          dt;
    }
    m.SetGauge("serve.window_qps", window_qps);
    m.SetGauge("serve.window_update_rate", window_update_rate);
    sample->metrics = std::move(m);
    samples_.Add(sample);
    latest_sample_ = sample;
  }
  return sample;
}

std::shared_ptr<const TelemetrySample> ServerEngine::latest_sample() const {
  std::lock_guard<std::mutex> lock(samples_mu_);
  return latest_sample_;
}

std::vector<std::shared_ptr<const TelemetrySample>>
ServerEngine::SamplesCopy() const {
  std::lock_guard<std::mutex> lock(samples_mu_);
  return samples_.Snapshot();
}

std::vector<SlowQueryRecord> ServerEngine::SlowQueries() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return slow_queries_.Snapshot();
}

HealthVerdict ServerEngine::Health() const {
  const uint64_t now = TraceRing::NowTicks();
  uint64_t queue_depth;
  double lag_ms = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth = queue_.size();
    if (!queue_.empty()) {
      lag_ms = static_cast<double>(now - queue_.front().enqueue_ticks) /
               1e6;
    }
  }
  return EvaluateHealth(queue_depth, lag_ms, options_.health);
}

std::string ServerEngine::ExpositionText() {
  std::shared_ptr<const TelemetrySample> sample = SampleNow();
  return pdatalog::ExpositionText(sample->metrics, SlowQueries());
}

std::string ServerEngine::WatchLine() {
  std::shared_ptr<const TelemetrySample> sample = SampleNow();
  const MetricsRegistry& m = sample->metrics;
  const Histogram* window = m.FindHistogram("hist.query_window_ns");
  std::string out = "watch epoch=" +
                    std::to_string(static_cast<uint64_t>(
                        m.gauge("serve.epoch"))) +
                    " rows=" +
                    std::to_string(static_cast<uint64_t>(
                        m.gauge("serve.snapshot_rows"))) +
                    " queue=" +
                    std::to_string(static_cast<uint64_t>(
                        m.gauge("serve.queue_depth"))) +
                    " lag_ms=" + MsCell(m.gauge("serve.maintain_lag_ms")) +
                    " age_ms=" + MsCell(m.gauge("serve.snapshot_age_ms")) +
                    " qps=" + TextTable::Cell(m.gauge("serve.window_qps"),
                                              1) +
                    " upd_s=" +
                    TextTable::Cell(m.gauge("serve.window_update_rate"), 1);
  if (window != nullptr) {
    out += " p50_us=" + TextTable::Cell(window->Percentile(50) / 1e3, 1) +
           " p95_us=" + TextTable::Cell(window->Percentile(95) / 1e3, 1) +
           " p99_us=" + TextTable::Cell(window->Percentile(99) / 1e3, 1);
  }
  out += " slow=" + std::to_string(m.counter("serve.slow_queries")) +
         " health=" + (Health().ok ? "ok" : "degraded");
  return out;
}

StatusOr<size_t> ServerEngine::SaveSnapshot(const std::string& directory) {
  std::shared_ptr<const ServerSnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = snapshot_;
  }
  // Rendering constant names reads the symbol table.
  std::lock_guard<std::mutex> lock(symbols_mu_);
  return SaveDatabase(snapshot->view, symbols_, directory);
}

MetricsRegistry ServerEngine::MetricsCopy() {
  return SampleNow()->metrics;
}

std::string ServerEngine::StatsReport() {
  std::shared_ptr<const ServerSnapshot> snapshot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot = snapshot_;
  }
  std::shared_ptr<const TelemetrySample> sample = SampleNow();
  const MetricsRegistry& metrics = sample->metrics;
  const uint64_t pending =
      static_cast<uint64_t>(metrics.gauge("serve.pending"));

  std::string out =
      "epoch " + std::to_string(snapshot->epoch) + ": " +
      std::to_string(snapshot->view.relation_count()) + " relations, " +
      std::to_string(snapshot->view.total_rows()) + " rows\n";
  out += "queries " + std::to_string(metrics.counter("serve.queries")) +
         " (" + std::to_string(metrics.counter("serve.query_rows")) +
         " rows returned), updates " +
         std::to_string(metrics.counter("serve.updates_applied")) +
         " applied in " +
         std::to_string(metrics.counter("serve.update_batches")) +
         " batches (" +
         std::to_string(metrics.counter("serve.updates_duplicate")) +
         " duplicates, " + std::to_string(pending) + " pending), " +
         std::to_string(metrics.counter("serve.derived_inserted")) +
         " tuples derived\n";
  HealthVerdict health = Health();
  out += "health: " + health.ToString() + "\n";
  out += "serve: queue " +
         std::to_string(static_cast<uint64_t>(
             metrics.gauge("serve.queue_depth"))) +
         ", lag " + MsCell(metrics.gauge("serve.maintain_lag_ms")) +
         " ms, snapshot age " +
         MsCell(metrics.gauge("serve.snapshot_age_ms")) +
         " ms, window qps " +
         TextTable::Cell(metrics.gauge("serve.window_qps"), 1) +
         ", update rate " +
         TextTable::Cell(metrics.gauge("serve.window_update_rate"), 1) +
         "/s\n";
  out += RenderHistogramTable(metrics);

  std::vector<SlowQueryRecord> slow = SlowQueries();
  if (!slow.empty()) {
    out += "slow queries (>= " +
           TextTable::Cell(options_.slow_query_ms, 2) + " ms, " +
           std::to_string(slow.size()) + " retained of " +
           std::to_string(metrics.counter("serve.slow_queries")) +
           " total):\n";
    // Newest last, the tail an operator reads first when scrolling.
    for (const SlowQueryRecord& r : slow) {
      out += "  " + r.atom + ": " +
             MsCell(static_cast<double>(r.latency_ns) / 1e6) +
             " ms, epoch " + std::to_string(r.epoch) + ", snapshot age " +
             MsCell(r.snapshot_age_ms) + " ms, " +
             std::to_string(r.scan_rows) + " scan rows, " +
             std::to_string(r.result_rows) + " result rows\n";
    }
  }
  if (tracer_ != nullptr && tracer_->total_dropped() > 0) {
    out += TraceDropWarning(tracer_->total_dropped());
  }
  return out;
}

}  // namespace pdatalog
