// The resident serving engine: load a program once, materialize its
// fixpoint, then serve interleaved point queries and streaming base-fact
// updates until shutdown.
//
// Threading model (docs/architecture.md, "Serving mode"):
//
//   * One *maintenance thread*, owned by the engine, is the only writer
//     of the database. It drains the update queue in batches, absorbs
//     the facts through the incremental evaluator (eval/incremental.h),
//     resumes the fixpoint, and publishes a fresh snapshot.
//
//   * Any number of *reader threads* call Query()/QueryText(). A query
//     pins the current `ServerSnapshot` (a shared_ptr swap under the
//     engine mutex — the only engine-mutex touch it makes) and then
//     scans the frozen DatabaseView wait-free: chunks never relocate
//     and rows below the freeze point never mutate, so readers race
//     with nothing. The mutex release/acquire on publication orders the
//     maintenance thread's row writes before any reader's loads.
//
//   * One *telemetry sampler thread* (when enabled) periodically
//     rotates the sliding-window histograms and publishes a timestamped
//     snapshot of the metrics registry plus live gauges (queue depth,
//     snapshot age, maintenance lag, window qps) into a bounded sample
//     ring. Telemetry state lives under its own `stats_mu_`, never the
//     engine mutex: a `/metrics` scrape, `!stats`, or `!watch` poller
//     copies counters off the hot lock and can never stall queries or
//     the maintenance thread (the engine mutex is only touched for a
//     handful of scalar loads).
//
//   * The symbol table is not thread-safe; every operation that interns
//     or renders names (parsing queries and facts, rendering results,
//     saving snapshots, rendering slow-query atoms) serializes on
//     `symbols_mu_`. The fixpoint itself never interns, so maintenance
//     and scans stay off that lock.
//
// Updates are asynchronous: SubmitFact* enqueues and returns. Flush()
// blocks until everything submitted so far is reflected in the
// published snapshot — the read-your-writes barrier the tests and the
// `!flush` protocol verb use.
#ifndef PDATALOG_SERVER_ENGINE_H_
#define PDATALOG_SERVER_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "datalog/ast.h"
#include "datalog/query.h"
#include "datalog/symbol_table.h"
#include "datalog/validate.h"
#include "eval/incremental.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/telemetry.h"
#include "obs/trace.h"
#include "storage/snapshot.h"
#include "util/status.h"

namespace pdatalog {

struct ServerOptions {
  // Maximum facts absorbed per maintenance cycle. Larger batches
  // amortize the fixpoint resume; smaller ones bound staleness.
  size_t max_batch = 256;
  // Record kApply/kMaintain spans on the maintenance ring and kQuery
  // spans on the engine ring.
  bool trace = false;
  size_t trace_ring_capacity = kDefaultTraceRingCapacity;

  // --- live telemetry ------------------------------------------------
  // Sampler period; every tick rotates the sliding windows and appends
  // one timestamped registry snapshot to the sample ring. 0 disables
  // the sampler thread (windows then only advance via SampleNow
  // callers, and window percentiles degrade toward lifetime ones).
  int sample_interval_ms = 500;
  // Sliding-window width in sampler intervals: the windowed p50/p95/p99
  // cover the last window_intervals × sample_interval_ms of traffic.
  int window_intervals = 20;
  // Bounded in-memory history of telemetry samples.
  size_t sample_ring = 256;
  // Queries at or above this latency are captured in the slow-query
  // ring (rendered atom, epoch, snapshot age, scan rows, latency) and
  // marked in the Chrome trace. 0 disables slow-query tracing.
  double slow_query_ms = 0;
  // Most-recent slow queries retained (drop-oldest).
  size_t slow_ring = 64;
  // `!health` / `/health` ceilings (obs/telemetry.h).
  HealthThresholds health;
};

// What readers pin: an epoch-stamped frozen view of the fixpoint.
// Epoch 1 is the initial materialization; every published update batch
// increments it. Immutable after publication.
struct ServerSnapshot {
  uint64_t epoch = 0;
  // Publication time (steady-clock ns); serve.snapshot_age_ms measures
  // staleness against it.
  uint64_t publish_ticks = 0;
  DatabaseView view;
};

class ServerEngine {
 public:
  // Parses and validates `source`, materializes the initial fixpoint
  // (program facts included), publishes snapshot epoch 1, and starts
  // the maintenance thread. The engine is heap-allocated and pinned:
  // the program and evaluator hold pointers into it.
  static StatusOr<std::unique_ptr<ServerEngine>> Create(
      std::string_view source, const ServerOptions& options = {});

  ~ServerEngine();
  ServerEngine(const ServerEngine&) = delete;
  ServerEngine& operator=(const ServerEngine&) = delete;

  // --- Read path (any thread) --------------------------------------

  // The snapshot readers currently see.
  std::shared_ptr<const ServerSnapshot> snapshot() const;

  // Interns and parses a query atom (serializes on the symbol lock).
  StatusOr<ParsedQuery> Parse(std::string_view query_text);

  // Answers `query` against the current snapshot. Wait-free after the
  // snapshot pin and the stats-lock metric touch; never blocks on the
  // maintenance thread's evaluation.
  StatusOr<QueryResult> Query(const ParsedQuery& query);

  // Parse + Query.
  StatusOr<QueryResult> QueryText(std::string_view query_text);

  // Renders a result's bindings ("X = alice, Y = bob" lines) under the
  // symbol lock.
  std::string Render(const QueryResult& result) const;

  // --- Write path (any thread; absorbed asynchronously) -------------

  // Validates and enqueues one base fact. `fact_text` is a ground atom
  // such as "par(alice, bob)." (trailing '.' optional). Errors —
  // unknown or derived predicate, arity mismatch, non-ground atom —
  // are reported here, synchronously; enqueued facts cannot fail.
  Status SubmitFactText(std::string_view fact_text);
  Status SubmitFact(Symbol predicate, Tuple tuple);

  // Blocks until every fact submitted before the call is reflected in
  // the published snapshot; returns that snapshot's epoch. The wait is
  // recorded in hist.flush_wait_ns / the serve.flush_wait_ms gauge.
  uint64_t Flush();

  // --- Introspection -------------------------------------------------

  uint64_t epoch() const;

  // Saves the *current snapshot* (not the moving fixpoint) to
  // `directory` via storage/snapshot. Returns relations written.
  StatusOr<size_t> SaveSnapshot(const std::string& directory);

  // Human-readable `!stats` report: epoch, row counts, serve counters,
  // health, the latency percentile table (lifetime + windowed), and the
  // slow-query ring.
  std::string StatsReport();

  // Point-in-time copy of the serve metrics: counters, live gauges
  // (serve.queue_depth, serve.snapshot_age_ms, serve.maintain_lag_ms,
  // serve.window_qps, ...), and histograms — lifetime (hist.query_ns,
  // hist.update_batch_ns, hist.flush_wait_ns) plus sliding-window
  // variants (hist.query_window_ns, hist.update_batch_window_ns).
  MetricsRegistry MetricsCopy();

  // Captures a fresh telemetry sample (counters copied under the stats
  // lock, scalar gauges read under the engine mutex, histograms merged
  // outside any lock) and appends it to the sample ring. Does not
  // rotate the windows — only the sampler thread's clock does that.
  std::shared_ptr<const TelemetrySample> SampleNow();

  // The sampler's most recent published sample (nullptr before the
  // first tick); reading it takes no engine or stats lock.
  std::shared_ptr<const TelemetrySample> latest_sample() const;

  // Oldest-first copy of the bounded sample history.
  std::vector<std::shared_ptr<const TelemetrySample>> SamplesCopy() const;

  // Oldest-first copy of the retained slow queries.
  std::vector<SlowQueryRecord> SlowQueries() const;

  // Current health verdict against ServerOptions::health: queue depth
  // and the age of the oldest pending update.
  HealthVerdict Health() const;

  // Fresh sample + slow-query ring rendered in the Prometheus text
  // exposition format (the `/metrics` body).
  std::string ExpositionText();

  // One compact stats line for `!watch`: epoch, queue depth, lag,
  // snapshot age, window qps/update rate and percentiles, health.
  std::string WatchLine();

  const ProgramInfo& info() const { return info_; }
  const Program& program() const { return program_; }
  const ServerOptions& options() const { return options_; }

  // Null unless ServerOptions::trace. Ring 0 belongs to the maintenance
  // thread; the engine ring carries query spans.
  Tracer* tracer() { return tracer_.get(); }

  // Stops the maintenance and sampler threads after the queue drains.
  // Idempotent; not thread-safe (call from one thread — the destructor
  // calls it).
  void Shutdown();

 private:
  struct PendingFact {
    Symbol predicate;
    Tuple tuple;
    uint64_t enqueue_ticks = 0;  // for serve.maintain_lag_ms
  };

  explicit ServerEngine(const ServerOptions& options);

  void MaintenanceLoop();
  void TelemetryLoop();
  // `rotate` advances the sliding windows (sampler thread only).
  std::shared_ptr<const TelemetrySample> Sample(bool rotate);
  void RecordQuery(const ParsedQuery& query,
                   const std::shared_ptr<const ServerSnapshot>& snapshot,
                   uint64_t begin_ticks, uint64_t end_ticks, bool ok,
                   size_t rows);

  const ServerOptions options_;
  const uint64_t slow_query_ns_;  // 0 = slow-query tracing off

  // Immutable after Create (the evaluator and program point into the
  // engine, which never moves).
  SymbolTable symbols_;
  Program program_;
  ProgramInfo info_;
  std::optional<IncrementalEvaluator> eval_;
  std::unique_ptr<Tracer> tracer_;

  // Serializes symbol interning and name rendering.
  mutable std::mutex symbols_mu_;

  // The *engine mutex*: guards the update queue, the published snapshot
  // pointer, and the epoch/submitted/applied counters. Never held
  // across an evaluation, a scan, or a histogram merge — and since the
  // telemetry split, never taken by metric recording at all.
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;    // maintenance waits for work
  std::condition_variable applied_cv_;  // Flush waits for absorption
  std::deque<PendingFact> queue_;
  std::shared_ptr<const ServerSnapshot> snapshot_;
  uint64_t epoch_ = 0;
  uint64_t submitted_ = 0;  // facts ever enqueued
  uint64_t applied_ = 0;    // facts reflected in snapshot_
  bool stop_ = false;

  // The *stats lock*: guards every telemetry structure below plus
  // engine-ring trace appends (readers share that ring; serializing
  // the appends preserves its single-writer contract). Held only for
  // bounded copies and O(1) records — never for merges, rendering, or
  // anything that could back-pressure the hot paths.
  mutable std::mutex stats_mu_;
  MetricsRegistry metrics_;
  Histogram query_hist_;    // hist.query_ns
  Histogram update_hist_;   // hist.update_batch_ns (maintenance)
  Histogram flush_hist_;    // hist.flush_wait_ns
  WindowedHistogram query_window_;   // hist.query_window_ns
  WindowedHistogram update_window_;  // hist.update_batch_window_ns
  SlowQueryRing slow_queries_;

  // Sample history + latest published sample (tiny critical sections;
  // endpoint readers touch only this lock).
  mutable std::mutex samples_mu_;
  SampleRing samples_;
  std::shared_ptr<const TelemetrySample> latest_sample_;

  // Sampler thread parking.
  std::mutex telemetry_mu_;
  std::condition_variable telemetry_cv_;
  bool telemetry_stop_ = false;

  std::thread maintenance_;
  std::thread telemetry_;
};

}  // namespace pdatalog

#endif  // PDATALOG_SERVER_ENGINE_H_
