// The resident serving engine: load a program once, materialize its
// fixpoint, then serve interleaved point queries and streaming base-fact
// updates until shutdown.
//
// Threading model (docs/architecture.md, "Serving mode"):
//
//   * One *maintenance thread*, owned by the engine, is the only writer
//     of the database. It drains the update queue in batches, absorbs
//     the facts through the incremental evaluator (eval/incremental.h),
//     resumes the fixpoint, and publishes a fresh snapshot.
//
//   * Any number of *reader threads* call Query()/QueryText(). A query
//     pins the current `ServerSnapshot` (a shared_ptr swap under the
//     engine mutex — the only lock it takes) and then scans the frozen
//     DatabaseView wait-free: chunks never relocate and rows below the
//     freeze point never mutate, so readers race with nothing. The
//     mutex release/acquire on publication orders the maintenance
//     thread's row writes before any reader's loads.
//
//   * The symbol table is not thread-safe; every operation that interns
//     or renders names (parsing queries and facts, rendering results,
//     saving snapshots) serializes on `symbols_mu_`. The fixpoint
//     itself never interns, so maintenance and scans stay off that
//     lock.
//
// Updates are asynchronous: SubmitFact* enqueues and returns. Flush()
// blocks until everything submitted so far is reflected in the
// published snapshot — the read-your-writes barrier the tests and the
// `!flush` protocol verb use.
#ifndef PDATALOG_SERVER_ENGINE_H_
#define PDATALOG_SERVER_ENGINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "datalog/ast.h"
#include "datalog/query.h"
#include "datalog/symbol_table.h"
#include "datalog/validate.h"
#include "eval/incremental.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/snapshot.h"
#include "util/status.h"

namespace pdatalog {

struct ServerOptions {
  // Maximum facts absorbed per maintenance cycle. Larger batches
  // amortize the fixpoint resume; smaller ones bound staleness.
  size_t max_batch = 256;
  // Record kApply/kMaintain spans on the maintenance ring and kQuery
  // spans on the engine ring.
  bool trace = false;
  size_t trace_ring_capacity = kDefaultTraceRingCapacity;
};

// What readers pin: an epoch-stamped frozen view of the fixpoint.
// Epoch 1 is the initial materialization; every published update batch
// increments it. Immutable after publication.
struct ServerSnapshot {
  uint64_t epoch = 0;
  DatabaseView view;
};

class ServerEngine {
 public:
  // Parses and validates `source`, materializes the initial fixpoint
  // (program facts included), publishes snapshot epoch 1, and starts
  // the maintenance thread. The engine is heap-allocated and pinned:
  // the program and evaluator hold pointers into it.
  static StatusOr<std::unique_ptr<ServerEngine>> Create(
      std::string_view source, const ServerOptions& options = {});

  ~ServerEngine();
  ServerEngine(const ServerEngine&) = delete;
  ServerEngine& operator=(const ServerEngine&) = delete;

  // --- Read path (any thread) --------------------------------------

  // The snapshot readers currently see.
  std::shared_ptr<const ServerSnapshot> snapshot() const;

  // Interns and parses a query atom (serializes on the symbol lock).
  StatusOr<ParsedQuery> Parse(std::string_view query_text);

  // Answers `query` against the current snapshot. Wait-free after the
  // two mutex-protected pointer/metric touches; never blocks on the
  // maintenance thread's evaluation.
  StatusOr<QueryResult> Query(const ParsedQuery& query);

  // Parse + Query.
  StatusOr<QueryResult> QueryText(std::string_view query_text);

  // Renders a result's bindings ("X = alice, Y = bob" lines) under the
  // symbol lock.
  std::string Render(const QueryResult& result) const;

  // --- Write path (any thread; absorbed asynchronously) -------------

  // Validates and enqueues one base fact. `fact_text` is a ground atom
  // such as "par(alice, bob)." (trailing '.' optional). Errors —
  // unknown or derived predicate, arity mismatch, non-ground atom —
  // are reported here, synchronously; enqueued facts cannot fail.
  Status SubmitFactText(std::string_view fact_text);
  Status SubmitFact(Symbol predicate, Tuple tuple);

  // Blocks until every fact submitted before the call is reflected in
  // the published snapshot; returns that snapshot's epoch.
  uint64_t Flush();

  // --- Introspection -------------------------------------------------

  uint64_t epoch() const;

  // Saves the *current snapshot* (not the moving fixpoint) to
  // `directory` via storage/snapshot. Returns relations written.
  StatusOr<size_t> SaveSnapshot(const std::string& directory);

  // Human-readable `!stats` report: epoch, row counts, serve counters,
  // and the latency percentile table (core/report).
  std::string StatsReport() const;

  // Point-in-time copy of the serve metrics, histograms included
  // (hist.query_ns, hist.update_batch_ns).
  MetricsRegistry MetricsCopy() const;

  const ProgramInfo& info() const { return info_; }
  const Program& program() const { return program_; }

  // Null unless ServerOptions::trace. Ring 0 belongs to the maintenance
  // thread; the engine ring carries query spans.
  Tracer* tracer() { return tracer_.get(); }

  // Stops the maintenance thread after it drains the queue. Idempotent;
  // not thread-safe (call from one thread — the destructor calls it).
  void Shutdown();

 private:
  struct PendingFact {
    Symbol predicate;
    Tuple tuple;
  };

  explicit ServerEngine(const ServerOptions& options) : options_(options) {}

  void MaintenanceLoop();
  void RecordQuery(uint64_t begin_ticks, uint64_t end_ticks, bool ok,
                   size_t rows);

  const ServerOptions options_;

  // Immutable after Create (the evaluator and program point into the
  // engine, which never moves).
  SymbolTable symbols_;
  Program program_;
  ProgramInfo info_;
  std::optional<IncrementalEvaluator> eval_;
  std::unique_ptr<Tracer> tracer_;

  // Serializes symbol interning and name rendering.
  mutable std::mutex symbols_mu_;

  // Guards everything below. Never held across an evaluation or a scan.
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;    // maintenance waits for work
  std::condition_variable applied_cv_;  // Flush waits for absorption
  std::deque<PendingFact> queue_;
  std::shared_ptr<const ServerSnapshot> snapshot_;
  uint64_t epoch_ = 0;
  uint64_t submitted_ = 0;  // facts ever enqueued
  uint64_t applied_ = 0;    // facts reflected in snapshot_
  bool stop_ = false;
  MetricsRegistry metrics_;
  Histogram query_hist_;   // hist.query_ns (recorded under mu_)
  Histogram update_hist_;  // hist.update_batch_ns (maintenance, under mu_)

  std::thread maintenance_;
};

}  // namespace pdatalog

#endif  // PDATALOG_SERVER_ENGINE_H_
