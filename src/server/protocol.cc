#include "server/protocol.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <istream>
#include <ostream>
#include <thread>
#include <utility>

namespace pdatalog {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

ProtocolReply Ok(std::string text) { return ProtocolReply{std::move(text)}; }

ProtocolReply Err(const std::string& reason) {
  // Errors are single-line by contract: squash any newline the message
  // carries (parser errors quote the input) so framing survives.
  std::string flat = "err ";
  for (char c : reason) flat += (c == '\n' || c == '\r') ? ' ' : c;
  flat += '\n';
  return ProtocolReply{std::move(flat)};
}

ProtocolReply HandleQuery(ServerEngine* engine, std::string_view text) {
  StatusOr<QueryResult> result = engine->QueryText(text);
  if (!result.ok()) return Err(result.status().message());
  std::string reply = engine->Render(*result);
  reply += "ok " + std::to_string(result->bindings.size()) + "\n";
  return Ok(std::move(reply));
}

// Parses "!watch [SEC [COUNT]]": SEC a decimal interval in seconds
// (default 2, max 3600), COUNT the number of lines (default 0 =
// unbounded). Total over garbage.
ProtocolReply HandleWatch(std::string_view arg) {
  double seconds = 2.0;
  uint64_t count = 0;
  if (!arg.empty()) {
    const std::string text(arg);
    char* end = nullptr;
    seconds = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || seconds < 0 || seconds > 3600 ||
        seconds != seconds) {
      return Err("usage: !watch [SEC [COUNT]] with SEC in [0, 3600]");
    }
    std::string_view rest = Trim(text.c_str() + (end - text.c_str()));
    if (!rest.empty()) {
      const std::string count_text(rest);
      char* count_end = nullptr;
      unsigned long long parsed =
          std::strtoull(count_text.c_str(), &count_end, 10);
      if (count_end == count_text.c_str() || *count_end != '\0') {
        return Err("usage: !watch [SEC [COUNT]] with integer COUNT");
      }
      count = parsed;
    }
  }
  ProtocolReply reply;
  reply.watch = true;
  reply.watch_interval_ms = static_cast<int>(seconds * 1000.0);
  reply.watch_count = count;
  return reply;
}

ProtocolReply HandleCommand(ServerEngine* engine, std::string_view text,
                            const ProtocolOptions& options) {
  std::string_view verb = text;
  std::string_view arg;
  size_t space = text.find_first_of(" \t");
  if (space != std::string_view::npos) {
    verb = text.substr(0, space);
    arg = Trim(text.substr(space + 1));
  }
  if (verb == "!quit") {
    ProtocolReply reply = Ok("ok bye\n");
    reply.quit = true;
    return reply;
  }
  if (verb == "!flush") {
    return Ok("ok epoch " + std::to_string(engine->Flush()) + "\n");
  }
  if (verb == "!stats") {
    return Ok(engine->StatsReport() + "ok\n");
  }
  if (verb == "!health") {
    return Ok("ok health " + engine->Health().ToString() + "\n");
  }
  if (verb == "!watch") {
    return HandleWatch(arg);
  }
  if (verb == "!snapshot") {
    if (!options.allow_snapshot) return Err("snapshot is disabled");
    if (arg.empty()) return Err("usage: !snapshot DIR");
    StatusOr<size_t> saved = engine->SaveSnapshot(std::string(arg));
    if (!saved.ok()) return Err(saved.status().message());
    return Ok("ok saved " + std::to_string(*saved) + " relations\n");
  }
  return Err("unknown command '" + std::string(verb) +
             "' (try !stats, !health, !watch, !flush, !snapshot DIR, "
             "!quit)");
}

}  // namespace

ProtocolReply HandleRequest(ServerEngine* engine, std::string_view line,
                            const ProtocolOptions& options) {
  std::string_view request = Trim(line);
  if (request.empty()) return ProtocolReply{};
  switch (request.front()) {
    case '?': {
      // "?- atom." or "? atom."
      std::string_view text = request.substr(1);
      if (!text.empty() && text.front() == '-') text.remove_prefix(1);
      return HandleQuery(engine, text);
    }
    case '+': {
      Status submitted = engine->SubmitFactText(request.substr(1));
      if (!submitted.ok()) return Err(submitted.message());
      return Ok("ok\n");
    }
    case '%':
      return ProtocolReply{};  // comment line
    case '!':
      return HandleCommand(engine, request, options);
    default:
      return Err(
          "unrecognized request (try '?- atom.', '+fact.', '!stats', "
          "'!flush', '!quit')");
  }
}

void RunWatch(ServerEngine* engine, int interval_ms, uint64_t count,
              const std::function<bool(std::string_view)>& write_line,
              const std::function<bool()>& aborted) {
  uint64_t emitted = 0;
  while (count == 0 || emitted < count) {
    if (aborted && aborted()) break;
    if (!write_line(engine->WatchLine() + "\n")) return;  // client gone
    ++emitted;
    if (count != 0 && emitted >= count) break;
    // Sleep in slices so Stop() (or `aborted`) is honored promptly even
    // with a long interval.
    int remaining = interval_ms;
    bool stop = false;
    while (remaining > 0 && !stop) {
      const int slice = remaining < 50 ? remaining : 50;
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      remaining -= slice;
      stop = aborted && aborted();
    }
    if (stop) break;
  }
  write_line("ok\n");  // close the frame even on abort
}

void ServeLoop(ServerEngine* engine, std::istream& in, std::ostream& out,
               const ProtocolOptions& options) {
  std::string line;
  while (std::getline(in, line)) {
    ProtocolReply reply = HandleRequest(engine, line, options);
    if (reply.watch) {
      RunWatch(engine, reply.watch_interval_ms, reply.watch_count,
               [&out](std::string_view text) {
                 out << text;
                 out.flush();
                 return static_cast<bool>(out);
               });
      continue;
    }
    if (!reply.text.empty()) {
      out << reply.text;
      out.flush();
    }
    if (reply.quit) break;
  }
}

// --- SocketListener --------------------------------------------------

namespace {

// Writes the whole buffer; false when the peer is gone.
bool WriteAll(int fd, std::string_view text) {
  const char* data = text.data();
  size_t remaining = text.size();
  while (remaining > 0) {
    ssize_t written = ::write(fd, data, remaining);
    if (written <= 0) return false;
    data += written;
    remaining -= static_cast<size_t>(written);
  }
  return true;
}

}  // namespace

SocketListener::~SocketListener() {
  // Subclass destructors already called Stop() (they must — a live
  // connection thread would otherwise call a destroyed override); this
  // is the idempotent backstop.
  Stop();
}

Status SocketListener::Start(int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  accept_thread_ = std::thread(&SocketListener::AcceptLoop, this);
  return Status::Ok();
}

void SocketListener::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal error
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connections_.push_back(fd);
    threads_.emplace_back(&SocketListener::ConnectionThread, this, fd);
  }
}

void SocketListener::ConnectionThread(int fd) {
  HandleConnection(fd);
  ::shutdown(fd, SHUT_RDWR);
  // Deregister and close under one lock acquisition: the kernel cannot
  // reuse this fd number for a new connection (registered by the accept
  // thread under the same lock) until close() runs, so Stop() never
  // shuts down a stale or reused descriptor.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    if (*it == fd) {
      connections_.erase(it);
      break;
    }
  }
  ::close(fd);
}

void SocketListener::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Wake every connection thread blocked in read().
    for (int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  // Wake the acceptor (shutdown on a listening socket makes a blocked
  // accept() return), but close the fd and clear the member only after
  // the join: AcceptLoop reads listen_fd_ unsynchronized, and the join
  // is the happens-before edge that makes the write safe.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // No new threads can start now (stopping_ is set, the acceptor is
  // gone); join what remains.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

// --- SocketServer ---------------------------------------------------

SocketServer::SocketServer(ServerEngine* engine,
                           const ProtocolOptions& options)
    : engine_(engine), options_(options) {}

SocketServer::~SocketServer() { Stop(); }

void SocketServer::HandleConnection(int fd) {
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF, Stop()'s shutdown, or error
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline;
    while (!quit &&
           (newline = buffer.find('\n', start)) != std::string::npos) {
      ProtocolReply reply = HandleRequest(
          engine_, std::string_view(buffer).substr(start, newline - start),
          options_);
      start = newline + 1;
      if (reply.watch) {
        RunWatch(
            engine_, reply.watch_interval_ms, reply.watch_count,
            [fd](std::string_view text) { return WriteAll(fd, text); },
            [this] { return stopping(); });
        continue;
      }
      if (!WriteAll(fd, reply.text)) quit = true;
      if (reply.quit) quit = true;
    }
    buffer.erase(0, start);
  }
}

// --- TelemetryHttpServer ---------------------------------------------

namespace {

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, std::string_view body) {
  std::string out = "HTTP/1.0 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out.append(body.data(), body.size());
  return out;
}

constexpr const char* kExpositionType =
    "text/plain; version=0.0.4; charset=utf-8";

}  // namespace

TelemetryHttpServer::TelemetryHttpServer(ServerEngine* engine)
    : engine_(engine) {}

TelemetryHttpServer::~TelemetryHttpServer() { Stop(); }

void TelemetryHttpServer::HandleConnection(int fd) {
  // One request per connection: read until the header terminator (the
  // request line is all we use), bounded at 8 KiB against garbage.
  std::string request;
  char chunk[1024];
  while (request.size() < 8192 &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find('\n') == std::string::npos) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) return;
    request.append(chunk, static_cast<size_t>(n));
  }
  size_t line_end = request.find('\n');
  std::string_view line =
      Trim(std::string_view(request).substr(0, line_end));

  // "METHOD SP PATH SP VERSION"
  size_t sp1 = line.find(' ');
  size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                             : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) {
    WriteAll(fd, HttpResponse(400, "Bad Request", "text/plain",
                              "bad request\n"));
    return;
  }
  std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  size_t query_string = path.find('?');
  if (query_string != std::string_view::npos) {
    path = path.substr(0, query_string);
  }
  if (method != "GET") {
    WriteAll(fd, HttpResponse(405, "Method Not Allowed", "text/plain",
                              "only GET is supported\n"));
    return;
  }
  if (path == "/metrics") {
    WriteAll(fd, HttpResponse(200, "OK", kExpositionType,
                              engine_->ExpositionText()));
    return;
  }
  if (path == "/health") {
    HealthVerdict verdict = engine_->Health();
    // Load balancers and probes key off the status code; the body
    // carries the reasons.
    if (verdict.ok) {
      WriteAll(fd, HttpResponse(200, "OK", "text/plain", "ok\n"));
    } else {
      WriteAll(fd, HttpResponse(503, "Service Unavailable", "text/plain",
                                verdict.ToString() + "\n"));
    }
    return;
  }
  WriteAll(fd, HttpResponse(404, "Not Found", "text/plain",
                            "not found (try /metrics or /health)\n"));
}

}  // namespace pdatalog
