#include "server/protocol.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <utility>

namespace pdatalog {
namespace {

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

ProtocolReply Ok(std::string text) { return ProtocolReply{std::move(text)}; }

ProtocolReply Err(const std::string& reason) {
  // Errors are single-line by contract: squash any newline the message
  // carries (parser errors quote the input) so framing survives.
  std::string flat = "err ";
  for (char c : reason) flat += (c == '\n' || c == '\r') ? ' ' : c;
  flat += '\n';
  return ProtocolReply{std::move(flat)};
}

ProtocolReply HandleQuery(ServerEngine* engine, std::string_view text) {
  StatusOr<QueryResult> result = engine->QueryText(text);
  if (!result.ok()) return Err(result.status().message());
  std::string reply = engine->Render(*result);
  reply += "ok " + std::to_string(result->bindings.size()) + "\n";
  return Ok(std::move(reply));
}

ProtocolReply HandleCommand(ServerEngine* engine, std::string_view text,
                            const ProtocolOptions& options) {
  std::string_view verb = text;
  std::string_view arg;
  size_t space = text.find_first_of(" \t");
  if (space != std::string_view::npos) {
    verb = text.substr(0, space);
    arg = Trim(text.substr(space + 1));
  }
  if (verb == "!quit") {
    ProtocolReply reply = Ok("ok bye\n");
    reply.quit = true;
    return reply;
  }
  if (verb == "!flush") {
    return Ok("ok epoch " + std::to_string(engine->Flush()) + "\n");
  }
  if (verb == "!stats") {
    return Ok(engine->StatsReport() + "ok\n");
  }
  if (verb == "!snapshot") {
    if (!options.allow_snapshot) return Err("snapshot is disabled");
    if (arg.empty()) return Err("usage: !snapshot DIR");
    StatusOr<size_t> saved = engine->SaveSnapshot(std::string(arg));
    if (!saved.ok()) return Err(saved.status().message());
    return Ok("ok saved " + std::to_string(*saved) + " relations\n");
  }
  return Err("unknown command '" + std::string(verb) +
             "' (try !stats, !flush, !snapshot DIR, !quit)");
}

}  // namespace

ProtocolReply HandleRequest(ServerEngine* engine, std::string_view line,
                            const ProtocolOptions& options) {
  std::string_view request = Trim(line);
  if (request.empty()) return ProtocolReply{};
  switch (request.front()) {
    case '?': {
      // "?- atom." or "? atom."
      std::string_view text = request.substr(1);
      if (!text.empty() && text.front() == '-') text.remove_prefix(1);
      return HandleQuery(engine, text);
    }
    case '+': {
      Status submitted = engine->SubmitFactText(request.substr(1));
      if (!submitted.ok()) return Err(submitted.message());
      return Ok("ok\n");
    }
    case '%':
      return ProtocolReply{};  // comment line
    case '!':
      return HandleCommand(engine, request, options);
    default:
      return Err(
          "unrecognized request (try '?- atom.', '+fact.', '!stats', "
          "'!flush', '!quit')");
  }
}

void ServeLoop(ServerEngine* engine, std::istream& in, std::ostream& out,
               const ProtocolOptions& options) {
  std::string line;
  while (std::getline(in, line)) {
    ProtocolReply reply = HandleRequest(engine, line, options);
    if (!reply.text.empty()) {
      out << reply.text;
      out.flush();
    }
    if (reply.quit) break;
  }
}

// --- SocketServer ---------------------------------------------------

SocketServer::SocketServer(ServerEngine* engine,
                           const ProtocolOptions& options)
    : engine_(engine), options_(options) {}

SocketServer::~SocketServer() { Stop(); }

Status SocketServer::Start(int port) {
  if (port < 0 || port > 65535) {
    return Status::InvalidArgument("port must be in [0, 65535]");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    Status status =
        Status::Internal(std::string("bind: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 16) != 0) {
    Status status =
        Status::Internal(std::string("listen: ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = static_cast<int>(ntohs(addr.sin_port));
  }
  accept_thread_ = std::thread(&SocketServer::AcceptLoop, this);
  return Status::Ok();
}

void SocketServer::AcceptLoop() {
  while (true) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal error
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return;
    }
    connections_.push_back(fd);
    threads_.emplace_back(&SocketServer::ConnectionLoop, this, fd);
  }
}

void SocketServer::ConnectionLoop(int fd) {
  std::string buffer;
  char chunk[4096];
  bool quit = false;
  while (!quit) {
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF, Stop()'s shutdown, or error
    buffer.append(chunk, static_cast<size_t>(n));
    size_t start = 0;
    size_t newline;
    while (!quit &&
           (newline = buffer.find('\n', start)) != std::string::npos) {
      ProtocolReply reply = HandleRequest(
          engine_, std::string_view(buffer).substr(start, newline - start),
          options_);
      start = newline + 1;
      const char* data = reply.text.data();
      size_t remaining = reply.text.size();
      while (remaining > 0) {
        ssize_t written = ::write(fd, data, remaining);
        if (written <= 0) {
          quit = true;
          break;
        }
        data += written;
        remaining -= static_cast<size_t>(written);
      }
      if (reply.quit) quit = true;
    }
    buffer.erase(0, start);
  }
  ::shutdown(fd, SHUT_RDWR);
  // Deregister and close under one lock acquisition: the kernel cannot
  // reuse this fd number for a new connection (registered by the accept
  // thread under the same lock) until close() runs, so Stop() never
  // shuts down a stale or reused descriptor.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = connections_.begin(); it != connections_.end(); ++it) {
    if (*it == fd) {
      connections_.erase(it);
      break;
    }
  }
  ::close(fd);
}

void SocketServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    // Wake every connection thread blocked in read().
    for (int fd : connections_) ::shutdown(fd, SHUT_RDWR);
  }
  // Wake the acceptor (shutdown on a listening socket makes a blocked
  // accept() return), but close the fd and clear the member only after
  // the join: AcceptLoop reads listen_fd_ unsynchronized, and the join
  // is the happens-before edge that makes the write safe.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // No new threads can start now (stopping_ is set, the acceptor is
  // gone); join what remains.
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

}  // namespace pdatalog
