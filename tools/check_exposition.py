#!/usr/bin/env python3
"""Validate a Prometheus text-exposition (0.0.4) scrape from pdatalog.

CI scrapes the resident engine's --telemetry-port endpoint and pipes the
body through this checker, so a malformed renderer fails the build
instead of silently breaking dashboards. Checks:

  - every non-comment line is `name{labels} value` with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a finite numeric value;
  - label values use only the three escapes \\\\ \\" \\n, with balanced
    quotes;
  - every sample's family was introduced by a `# TYPE` line, and TYPE
    lines are not repeated or contradictory;
  - histogram `_bucket` series are cumulative in `le` order and end in
    an `le="+Inf"` bucket equal to the family's `_count`;
  - optional --require NAME flags assert specific families are present.

Usage:
  curl -s http://127.0.0.1:9107/metrics | tools/check_exposition.py \
      --require pdatalog_serve_queries_total \
      --require pdatalog_serve_queue_depth
  tools/check_exposition.py scrape.txt
"""

import argparse
import math
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


class Invalid(Exception):
    pass


def parse_labels(raw):
    """Parses `a="x",b="y"` (no braces). Returns a dict."""
    labels = {}
    i = 0
    while i < len(raw):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', raw[i:])
        if not match:
            raise Invalid("bad label at %r" % raw[i:])
        name = match.group(1)
        i += match.end()
        value = []
        while True:
            if i >= len(raw):
                raise Invalid("unterminated label value for %r" % name)
            ch = raw[i]
            if ch == "\\":
                if i + 1 >= len(raw) or raw[i + 1] not in ('\\', '"', 'n'):
                    raise Invalid("bad escape in label %r" % name)
                value.append(raw[i:i + 2])
                i += 2
                continue
            if ch == '"':
                i += 1
                break
            if ch == "\n":
                raise Invalid("raw newline in label %r" % name)
            value.append(ch)
            i += 1
        labels[name] = "".join(value)
        if i < len(raw):
            if raw[i] != ",":
                raise Invalid("expected ',' between labels, got %r" % raw[i])
            i += 1
    return labels


def parse_sample(line):
    """Splits `name{labels} value` -> (name, labels dict, float value)."""
    brace = line.find("{")
    if brace >= 0:
        close = line.rfind("}")
        if close < brace:
            raise Invalid("unbalanced braces")
        name = line[:brace]
        labels = parse_labels(line[brace + 1:close])
        rest = line[close + 1:].strip()
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise Invalid("expected 'name value'")
        name, rest = parts[0], parts[1].strip()
        labels = {}
    if not NAME_RE.match(name):
        raise Invalid("bad metric name %r" % name)
    for label in labels:
        if not LABEL_NAME_RE.match(label):
            raise Invalid("bad label name %r" % label)
    try:
        value = float(rest)
    except ValueError:
        raise Invalid("bad sample value %r" % rest)
    if math.isnan(value) or math.isinf(value):
        raise Invalid("non-finite sample value %r" % rest)
    return name, labels, value


def family_of(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[:-len(suffix)]
    return name


def check(text, required):
    errors = []
    types = {}
    samples = []
    if text and not text.endswith("\n"):
        errors.append("exposition does not end in a newline")
    for lineno, line in enumerate(text.splitlines(), start=1):
        try:
            if not line.strip():
                continue
            if line.startswith("# TYPE "):
                parts = line.split()
                if len(parts) != 4:
                    raise Invalid("malformed TYPE line")
                _, _, name, kind = parts
                if not NAME_RE.match(name):
                    raise Invalid("bad family name %r" % name)
                if kind not in TYPES:
                    raise Invalid("unknown type %r" % kind)
                if name in types:
                    raise Invalid("duplicate TYPE for %r" % name)
                types[name] = kind
                continue
            if line.startswith("#"):
                continue  # HELP and other comments
            samples.append((lineno,) + parse_sample(line))
        except Invalid as err:
            errors.append("line %d: %s" % (lineno, err))

    buckets = {}  # family -> list of (le, value)
    counts = {}  # family -> _count value
    seen_families = set()
    for lineno, name, labels, value in samples:
        family = family_of(name)
        seen_families.add(name)
        seen_families.add(family)
        if family not in types:
            errors.append("line %d: sample %r has no # TYPE line"
                          % (lineno, name))
            continue
        kind = types[family]
        if kind == "counter" and not name.endswith("_total"):
            errors.append("line %d: counter sample %r lacks _total"
                          % (lineno, name))
        if kind == "counter" and value < 0:
            errors.append("line %d: negative counter %r" % (lineno, name))
        if name.endswith("_bucket"):
            if kind != "histogram":
                errors.append("line %d: _bucket outside a histogram"
                              % lineno)
                continue
            le = labels.get("le")
            if le is None:
                errors.append("line %d: bucket without le label" % lineno)
                continue
            bound = math.inf if le == "+Inf" else float(le)
            buckets.setdefault(family, []).append((lineno, bound, value))
        elif name.endswith("_count") and kind == "histogram":
            counts[family] = value

    for family, rows in sorted(buckets.items()):
        previous = -math.inf
        cumulative = -1.0
        for lineno, bound, value in rows:
            if bound <= previous:
                errors.append("line %d: %s buckets not in increasing le "
                              "order" % (lineno, family))
            if value < cumulative:
                errors.append("line %d: %s buckets not cumulative"
                              % (lineno, family))
            previous, cumulative = bound, value
        if not math.isinf(rows[-1][1]):
            errors.append("%s: missing le=\"+Inf\" bucket" % family)
        elif family in counts and rows[-1][2] != counts[family]:
            errors.append("%s: +Inf bucket %g != _count %g"
                          % (family, rows[-1][2], counts[family]))

    for name in required:
        if name not in seen_families:
            errors.append("required family %r absent from scrape" % name)
    if not samples and not errors:
        errors.append("scrape contained no samples")
    return errors


def main():
    parser = argparse.ArgumentParser(
        description="validate a Prometheus 0.0.4 text exposition")
    parser.add_argument("path", nargs="?", default="-",
                        help="file to check (default: stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this metric family is present "
                             "(repeatable)")
    args = parser.parse_args()

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path) as f:
            text = f.read()

    errors = check(text, args.require)
    for error in errors:
        print("check_exposition: %s" % error, file=sys.stderr)
    if errors:
        return 1
    print("check_exposition: ok (%d lines)" % len(text.splitlines()))
    return 0


if __name__ == "__main__":
    sys.exit(main())
