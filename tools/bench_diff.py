#!/usr/bin/env python3
"""Compare BENCH_*.json bench records against committed baselines.

Each bench harness writes `BENCH_<name>.json` ({"bench": ..., "records":
[...]}) and the repository commits a `BENCH_<name>.baseline.json` next to
the sources. This tool diffs a fresh run against that baseline and fails
(exit 1) on regressions, so perf PRs are gated on measured numbers
instead of grep-for-a-flag:

  - fields ending in `wall_ms` are wall-clock times, lower is better:
    a regression is current > baseline * (1 + --tolerance).
    `--no-wall` skips them (CI machines are not the baseline machine).
  - fields ending in `_speedup` or `_reduction` are ratios of two walls
    measured in the same run, higher is better and much more stable
    across machines: a regression is current < baseline *
    (1 - --ratio-tolerance).
  - fields ending in `_overhead_pct` are percentage costs relative to a
    same-run baseline leg (e.g. telemetry on vs off), lower is better
    and already machine-normalised: a regression is current >
    baseline + --overhead-slack percentage points.
  - booleans, strings, and configuration echoes (counts, sizes) are
    ignored.

Records are matched by their `"id"` field when both sides have one, by
position otherwise. Records present on only one side are reported but
are not failures (smoke runs may skip expensive layers).

Usage:
  tools/bench_diff.py [--no-wall] [--tolerance F] [--ratio-tolerance F]
                      [--baseline-dir DIR] CURRENT.json [CURRENT.json...]

The baseline for CURRENT `<dir>/BENCH_x.json` is
`<baseline-dir>/BENCH_x.baseline.json`; --baseline-dir defaults to the
repository root (the parent of this script's directory).
"""

import argparse
import json
import os
import sys


def load_records(path):
    with open(path) as f:
        data = json.load(f)
    return data.get("records", [])


def match_records(current, baseline):
    """Pairs records by "id" when available, by index otherwise.

    Returns (pairs, only_current, only_baseline) where pairs is a list of
    (label, current_record, baseline_record).
    """
    if all("id" in r for r in current) and all("id" in r for r in baseline):
        base_by_id = {r["id"]: r for r in baseline}
        cur_by_id = {r["id"]: r for r in current}
        pairs = [(rid, cur_by_id[rid], base_by_id[rid])
                 for rid in cur_by_id if rid in base_by_id]
        only_cur = [rid for rid in cur_by_id if rid not in base_by_id]
        only_base = [rid for rid in base_by_id if rid not in cur_by_id]
        return pairs, only_cur, only_base
    n = min(len(current), len(baseline))
    pairs = [("#%d" % i, current[i], baseline[i]) for i in range(n)]
    only_cur = ["#%d" % i for i in range(n, len(current))]
    only_base = ["#%d" % i for i in range(n, len(baseline))]
    return pairs, only_cur, only_base


def is_number(value):
    # bool is an int subclass in Python; flags like spsc_speedup must
    # not be compared numerically.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def compare_pair(label, cur, base, args, report):
    """Appends (severity, message) entries to report; returns #failures."""
    failures = 0
    for key, base_val in base.items():
        if not is_number(base_val):
            continue
        cur_val = cur.get(key)
        if not is_number(cur_val):
            if key in cur:
                continue
            report.append(("warn", "%s: field %r missing from current run"
                           % (label, key)))
            continue
        if key.endswith("wall_ms"):
            if args.no_wall:
                continue
            limit = base_val * (1.0 + args.tolerance)
            if cur_val > limit and cur_val - base_val > args.min_wall_ms:
                failures += 1
                report.append(("FAIL", "%s: %s %.3f -> %.3f ms (+%.1f%%, "
                               "limit +%.0f%%)"
                               % (label, key, base_val, cur_val,
                                  100.0 * (cur_val / base_val - 1.0),
                                  100.0 * args.tolerance)))
            else:
                report.append(("ok", "%s: %s %.3f -> %.3f ms"
                               % (label, key, base_val, cur_val)))
        elif key.endswith("_overhead_pct"):
            limit = base_val + args.overhead_slack
            if cur_val > limit:
                failures += 1
                report.append(("FAIL", "%s: %s %+.1f%% -> %+.1f%% (limit "
                               "%+.1f%%: baseline + %.0f point slack)"
                               % (label, key, base_val, cur_val, limit,
                                  args.overhead_slack)))
            else:
                report.append(("ok", "%s: %s %+.1f%% -> %+.1f%%"
                               % (label, key, base_val, cur_val)))
        elif key.endswith("_speedup") or key.endswith("_reduction"):
            limit = base_val * (1.0 - args.ratio_tolerance)
            if cur_val < limit:
                failures += 1
                report.append(("FAIL", "%s: %s %.3f -> %.3f (-%.1f%%, "
                               "limit -%.0f%%)"
                               % (label, key, base_val, cur_val,
                                  100.0 * (1.0 - cur_val / base_val),
                                  100.0 * args.ratio_tolerance)))
            else:
                report.append(("ok", "%s: %s %.3f -> %.3f"
                               % (label, key, base_val, cur_val)))
    return failures


def diff_file(current_path, args):
    name = os.path.basename(current_path)
    if not name.endswith(".json") or name.endswith(".baseline.json"):
        print("bench_diff: skipping %s (not a bench record)" % current_path)
        return 0
    baseline_path = os.path.join(args.baseline_dir,
                                 name[:-len(".json")] + ".baseline.json")
    if not os.path.exists(baseline_path):
        print("bench_diff: no baseline for %s (expected %s) — skipping"
              % (name, baseline_path))
        return 0

    current = load_records(current_path)
    baseline = load_records(baseline_path)
    pairs, only_cur, only_base = match_records(current, baseline)

    report = []
    failures = 0
    for label, cur, base in pairs:
        failures += compare_pair(label, cur, base, args, report)
    for rid in only_cur:
        report.append(("warn", "record %s only in current run" % rid))
    for rid in only_base:
        report.append(("warn", "record %s only in baseline" % rid))

    print("== %s vs %s ==" % (current_path, baseline_path))
    for severity, message in report:
        if severity == "ok" and not args.verbose:
            continue
        print("  [%s] %s" % (severity, message))
    print("  %d record pair(s), %d regression(s)" % (len(pairs), failures))
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="diff BENCH_*.json against committed baselines")
    parser.add_argument("currents", nargs="+", metavar="CURRENT.json")
    parser.add_argument("--baseline-dir",
                        default=os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))),
                        help="directory holding *.baseline.json "
                             "(default: repository root)")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative wall-clock regression "
                             "(default 0.15)")
    parser.add_argument("--ratio-tolerance", type=float, default=0.25,
                        help="allowed relative drop in _speedup/_reduction "
                             "fields (default 0.25)")
    parser.add_argument("--overhead-slack", type=float, default=10.0,
                        help="allowed absolute rise in _overhead_pct "
                             "fields, in percentage points (default 10; "
                             "tail percentiles are noisy on shared CI)")
    parser.add_argument("--min-wall-ms", type=float, default=1.0,
                        help="ignore wall regressions smaller than this "
                             "many ms (timer noise floor; default 1.0)")
    parser.add_argument("--no-wall", action="store_true",
                        help="skip wall_ms fields (cross-machine runs)")
    parser.add_argument("--verbose", action="store_true",
                        help="print passing comparisons too")
    args = parser.parse_args()

    failures = sum(diff_file(path, args) for path in args.currents)
    if failures:
        print("bench_diff: %d regression(s)" % failures)
        return 1
    print("bench_diff: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
