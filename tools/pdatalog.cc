// The pdatalog command-line tool: evaluates a Datalog program file
// sequentially or in parallel with any of the paper's schemes.
// See src/cli/driver.h for the flag reference.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "cli/driver.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  pdatalog::StatusOr<pdatalog::CliOptions> options =
      pdatalog::ParseCliArgs(args);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().message().c_str());
    return 2;
  }

  std::ostringstream source;
  if (!options->program_path.empty()) {
    std::ifstream file(options->program_path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n",
                   options->program_path.c_str());
      return 2;
    }
    source << file.rdbuf();
  }

  if (options->serve) {
    pdatalog::Status status = pdatalog::RunServe(
        *options, source.str(), std::cin, std::cout);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }

  if (options->interactive) {
    pdatalog::Status status = pdatalog::RunInteractive(
        *options, source.str(), std::cin, std::cout);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }

  pdatalog::StatusOr<std::string> report =
      pdatalog::RunCli(*options, source.str());
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 1;
  }
  std::fputs(report->c_str(), stdout);
  return 0;
}
