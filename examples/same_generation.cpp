// Same-generation with the general scheme of Section 7: a non-linear
// query over a corporate org chart — which employees sit at the same
// depth of the reporting hierarchy (reachable through a common chain of
// managers)?
#include <cstdio>

#include "core/engine.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "workload/generators.h"

using namespace pdatalog;

int main() {
  const char* source = R"(
    % sg(X, Y): X and Y are in the same generation of the hierarchy.
    sg(X, Y) :- peer(X, Y).
    sg(X, Y) :- boss(X, U), sg(U, V), subordinate(V, Y).
  )";

  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(source, &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);

  // Synthetic org chart: 60 employees report to 12 managers; the
  // managers are declared peers of one another through a tiny peer set;
  // `subordinate` is the inverse view of `boss`.
  auto fill = [&](Database* db) {
    GenFlat(&symbols, db, "boss", 60, 12, 2024);
    Relation& boss = *db->Find(symbols.Lookup("boss"));
    Relation& sub = db->GetOrCreate(symbols.Intern("subordinate"), 2);
    for (size_t r = 0; r < boss.size(); ++r) {
      sub.Insert(Tuple{boss.row(r)[1], boss.row(r)[0]});
    }
    Relation& peer = db->GetOrCreate(symbols.Intern("peer"), 2);
    for (int i = 0; i + 1 < 12; ++i) {
      Value a = symbols.Intern("p" + std::to_string(i));
      Value b = symbols.Intern("p" + std::to_string(i + 1));
      peer.Insert(Tuple{a, b});
      peer.Insert(Tuple{b, a});
    }
  };

  // Sequential reference.
  Database seq_db;
  fill(&seq_db);
  EvalStats seq_stats;
  Status status = SemiNaiveEvaluate(*program, info, &seq_db, &seq_stats);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  Symbol sg = symbols.Lookup("sg");
  std::printf("sequential: %zu sg tuples, %llu firings\n",
              seq_db.Find(sg)->size(),
              static_cast<unsigned long long>(seq_stats.firings));

  // Section 7 rewriting: one discriminating sequence per rule.
  //   rule 1: v(r1) = <Y>  (the exit rule)
  //   rule 2: v(r2) = <V>  (the join variable of the recursive rule)
  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(4);
  specs[1].vars = {symbols.Intern("V")};
  specs[1].h = DiscriminatingFunction::UniformHash(4);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(*program, info, 4, specs);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }

  std::printf("\nT_2, the program at processor 2 (Section 7):\n%s\n",
              ToString(bundle->per_processor[2]).c_str());

  Database edb;
  fill(&edb);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("parallel (4 processors): %llu sg tuples, %llu firings, "
              "%llu cross messages\n",
              static_cast<unsigned long long>(result->pooled_tuples),
              static_cast<unsigned long long>(result->total_firings),
              static_cast<unsigned long long>(result->cross_tuples));

  bool same = result->output.Find(sg)->ToSortedString(symbols) ==
              seq_db.Find(sg)->ToSortedString(symbols);
  std::printf("\nparallel == sequential: %s (Theorem 5)\n",
              same ? "yes" : "NO!");
  std::printf("firings parallel <= sequential: %s (Theorem 6)\n",
              result->total_firings <= seq_stats.firings ? "yes" : "NO!");

  std::printf("\nper-processor load (firings):");
  for (const WorkerStats& w : result->workers) {
    std::printf(" %llu", static_cast<unsigned long long>(w.firings));
  }
  std::printf("\n");
  return same ? 0 : 1;
}
