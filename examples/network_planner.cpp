// Compile-time network planning (Section 5): given a linear sirup and a
// choice of discriminating sequence + linear discriminating function,
// derive the minimal communication network before running anything —
// "the rewriting method at compile time can be adapted to the
// architecture of the system" (Section 8).
#include <cstdio>

#include "core/advisor.h"
#include "core/dataflow_graph.h"
#include "core/network_graph.h"
#include "datalog/parser.h"
#include "workload/generators.h"

using namespace pdatalog;

namespace {

void Plan(const char* title, const char* source,
          const std::vector<std::string>& v_r_names,
          const std::vector<std::string>& v_e_names,
          const std::vector<int>& coeffs_h,
          const std::vector<int>& coeffs_hp) {
  std::printf("=== %s ===\n%s", title, source);

  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(source, &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(*program, info);
  if (!sirup.ok()) {
    std::printf("  not a linear sirup: %s\n\n",
                sirup.status().ToString().c_str());
    return;
  }

  DataflowGraph dataflow = DataflowGraph::Build(*sirup);
  std::printf("dataflow graph (Definition 2): %s\n",
              dataflow.edges.empty() ? "(empty)"
                                     : dataflow.ToString().c_str());
  if (dataflow.HasCycle()) {
    StatusOr<LinearSchemeOptions> free_scheme =
        CommunicationFreeScheme(*sirup, 4);
    if (free_scheme.ok()) {
      std::printf("cycle found (Theorem 3): choose v(r) = <");
      for (size_t i = 0; i < free_scheme->v_r.size(); ++i) {
        std::printf("%s%s", i ? ", " : "",
                    symbols.Name(free_scheme->v_r[i]).c_str());
      }
      std::printf("> for a communication-free execution\n");
    }
  } else {
    std::printf("acyclic: some communication is unavoidable; deriving the "
                "minimal network\n");
  }

  std::vector<Symbol> v_r, v_e;
  for (const std::string& n : v_r_names) v_r.push_back(symbols.Intern(n));
  for (const std::string& n : v_e_names) v_e.push_back(symbols.Intern(n));
  StatusOr<NetworkGraph> network =
      DeriveNetworkGraph(*sirup, v_r, v_e, coeffs_h, coeffs_hp);
  if (!network.ok()) {
    std::printf("  derivation failed: %s\n\n",
                network.status().ToString().c_str());
    return;
  }
  std::printf("chosen v(r) = <");
  for (size_t i = 0; i < v_r_names.size(); ++i) {
    std::printf("%s%s", i ? ", " : "", v_r_names[i].c_str());
  }
  std::printf(">, h = ");
  for (size_t i = 0; i < coeffs_h.size(); ++i) {
    std::printf("%s%d*g(a%zu)", i ? " + " : "", coeffs_h[i], i + 1);
  }
  std::printf("\nprocessors (achievable h values): {");
  for (size_t i = 0; i < network->processors.size(); ++i) {
    std::printf("%s%d", i ? ", " : "", network->processors[i]);
  }
  std::printf("}\nminimal network graph:\n%s",
              network->ToString().c_str());
  size_t possible = network->processors.size() * network->processors.size();
  std::printf("channels needed: %zu of %zu possible\n\n",
              network->edges.size(), possible);
}

}  // namespace

int main() {
  // The paper's Example 6 (Figure 3): a de Bruijn-style 4-processor net.
  Plan("Example 6 / Figure 3",
       "p(X, Y) :- q(X, Y).\n"
       "p(X, Y) :- p(Y, Z), r(X, Z).\n",
       {"Y", "Z"}, {"X", "Y"}, {2, 1}, {2, 1});

  // The paper's Example 7 (Figure 4): h = g(a1) - g(a2) + g(a3).
  Plan("Example 7 / Figure 4",
       "p(U, V, W) :- s(U, V, W).\n"
       "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
       {"V", "W", "Z"}, {"U", "V", "W"}, {1, -1, 1}, {1, -1, 1});

  // Ancestor with the Example 1 sequence: self-loops only, proving at
  // compile time that no interconnect is needed.
  Plan("Ancestor, v(r) = <Y> (Example 1)",
       "anc(X, Y) :- par(X, Y).\n"
       "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
       {"Y"}, {"Y"}, {1}, {1});

  // Ancestor with the Example 3 sequence: the price of disjoint
  // fragments is a complete interconnect.
  Plan("Ancestor, v(r) = <Z> (Example 3)",
       "anc(X, Y) :- par(X, Y).\n"
       "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
       {"Z"}, {"X"}, {1}, {1});

  // Close the loop: let the advisor pick among the candidates for a
  // concrete database and cost model (Section 8's compiler decision).
  {
    std::printf("=== scheme advisor (ancestor, random data, net/cpu=4) ===\n");
    SymbolTable symbols;
    StatusOr<Program> program = ParseProgram(
        "anc(X, Y) :- par(X, Y).\n"
        "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
        &symbols);
    ProgramInfo info;
    (void)Validate(*program, &info);
    StatusOr<LinearSirup> sirup = ExtractLinearSirup(*program, info);
    Database edb;
    GenRandomGraph(&symbols, &edb, "par", 60, 140, 17);
    AdvisorOptions options;
    options.cost = {1.0, 4.0, 0.0};
    StatusOr<AdvisorReport> report =
        AdviseScheme(*program, info, *sirup, &edb, options);
    if (report.ok()) {
      std::printf("%s", report->ToString().c_str());
      std::printf("advice: %s — %s\n", report->best().name.c_str(),
                  report->best().description.c_str());
    }
  }
  return 0;
}
