// Streaming view maintenance: keep the ancestor closure materialized
// while parent edges arrive in batches, using the incremental evaluator
// (monotone updates resume the semi-naive fixpoint instead of
// recomputing it).
#include <cstdio>

#include "datalog/parser.h"
#include "eval/incremental.h"
#include "util/hash.h"
#include "util/stopwatch.h"
#include "util/table.h"

using namespace pdatalog;

int main() {
  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info;
  Status status = Validate(*program, &info);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }

  StatusOr<IncrementalEvaluator> inc =
      IncrementalEvaluator::Create(*program, info);
  if (!inc.ok()) {
    std::fprintf(stderr, "%s\n", inc.status().ToString().c_str());
    return 1;
  }

  Symbol par = symbols.Lookup("par");
  Symbol anc = symbols.Lookup("anc");
  SplitMix64 rng(2026);
  auto node = [&](uint64_t i) {
    return symbols.Intern("n" + std::to_string(i));
  };

  std::printf("streaming 10 batches of 60 random parent edges each;\n"
              "the anc closure is maintained incrementally.\n\n");
  TextTable table({"batch", "new edges", "anc size", "batch firings",
                   "recompute firings", "saved", "ms"});

  uint64_t cumulative_recompute = 0;
  for (int batch = 1; batch <= 10; ++batch) {
    int added = 0;
    for (int k = 0; k < 60; ++k) {
      uint64_t a = rng.NextBelow(150);
      uint64_t b = rng.NextBelow(150);
      if (a == b) continue;
      StatusOr<bool> inserted =
          inc->AddFact(par, Tuple{node(a), node(b)});
      if (inserted.ok() && *inserted) ++added;
    }
    Stopwatch watch;
    StatusOr<EvalStats> stats = inc->Evaluate();
    if (!stats.ok()) {
      std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
      return 1;
    }
    // What a from-scratch recomputation would have cost at this point:
    // the cumulative firing count of the maintained view (each
    // derivation fires exactly once across all batches, so the total
    // equals one batch evaluation over everything seen so far).
    cumulative_recompute = inc->stats().firings;
    uint64_t saved =
        cumulative_recompute - stats->firings;  // avoided re-derivations
    table.AddRow({TextTable::Cell(batch), TextTable::Cell(added),
                  TextTable::Cell(inc->Find(anc)->size()),
                  TextTable::Cell(stats->firings),
                  TextTable::Cell(cumulative_recompute),
                  TextTable::Cell(saved),
                  TextTable::Cell(watch.ElapsedMillis(), 2)});
  }
  table.Print();

  std::printf(
      "\nreading guide: 'batch firings' is the work actually done per\n"
      "batch; 'recompute firings' is what evaluating from scratch would\n"
      "cost (the cumulative derivation count). The gap is the payoff of\n"
      "incremental maintenance — it grows as the materialized closure\n"
      "grows.\n");
  return 0;
}
