// Andersen-style points-to analysis as parallel Datalog: a real program
// analysis workload with two mutually dependent derived predicates
// (variable and heap points-to), run under the Section 7 general scheme.
//
// The synthetic "program under analysis" has `new` sites, copy chains,
// and load/store pairs through pointer variables.
#include <cstdio>

#include "core/engine.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "util/hash.h"
#include "util/table.h"
#include "workload/programs.h"

using namespace pdatalog;

namespace {

// Generates a synthetic intermediate representation: `vars` variables,
// `objs` allocation sites, plus copy/load/store edges.
void GenerateIr(SymbolTable* symbols, Database* db, int vars, int objs,
                uint64_t seed) {
  SplitMix64 rng(seed);
  auto var = [&](int i) {
    return symbols->Intern("v" + std::to_string(i));
  };
  auto obj = [&](int i) {
    return symbols->Intern("o" + std::to_string(i));
  };

  Relation& new_rel = db->GetOrCreate(symbols->Intern("new"), 2);
  Relation& assign = db->GetOrCreate(symbols->Intern("assign"), 2);
  Relation& load = db->GetOrCreate(symbols->Intern("load"), 2);
  Relation& store = db->GetOrCreate(symbols->Intern("store"), 2);

  // Every fourth variable allocates.
  for (int i = 0; i < vars; i += 4) {
    new_rel.Insert(Tuple{var(i), obj(static_cast<int>(rng.NextBelow(objs)))});
  }
  // Copy chains: v_i = v_j.
  for (int k = 0; k < vars * 2; ++k) {
    assign.Insert(Tuple{var(static_cast<int>(rng.NextBelow(vars))),
                        var(static_cast<int>(rng.NextBelow(vars)))});
  }
  // Loads v = *p and stores *p = w.
  for (int k = 0; k < vars / 2; ++k) {
    load.Insert(Tuple{var(static_cast<int>(rng.NextBelow(vars))),
                      var(static_cast<int>(rng.NextBelow(vars)))});
    store.Insert(Tuple{var(static_cast<int>(rng.NextBelow(vars))),
                       var(static_cast<int>(rng.NextBelow(vars)))});
  }
}

}  // namespace

int main() {
  StatusOr<NamedProgram> named = FindProgram("points_to");
  if (!named.ok()) return 1;
  std::printf("points-to analysis rules:\n%s\n", named->source.c_str());

  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(named->source, &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);

  // Sequential reference.
  Database seq_db;
  GenerateIr(&symbols, &seq_db, 400, 60, 77);
  EvalStats seq_stats;
  Status status = SemiNaiveEvaluate(*program, info, &seq_db, &seq_stats);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  Symbol pt = symbols.Lookup("pt");
  Symbol heap_pt = symbols.Lookup("heap_pt");
  std::printf("sequential: pt %zu tuples, heap_pt %zu tuples, %llu firings\n",
              seq_db.Find(pt)->size(), seq_db.Find(heap_pt)->size(),
              static_cast<unsigned long long>(seq_stats.firings));

  // Section 7 rewriting: partition each rule on the points-to *object*
  // variable where available, otherwise on the rule's join variable.
  //   rule 1: pt(V,O) :- new(V,O)                      -> <O>
  //   rule 2: pt(V,O) :- assign(V,W), pt(W,O)          -> <O>
  //   rule 3: pt(V,O) :- load(V,P), pt(P,A), heap_pt(A,O) -> <A>
  //   rule 4: heap_pt(A,O) :- store(P,W), pt(P,A), pt(W,O) -> <A>
  const int P = 4;
  std::vector<GeneralRuleSpec> specs(4);
  specs[0].vars = {symbols.Intern("O")};
  specs[1].vars = {symbols.Intern("O")};
  specs[2].vars = {symbols.Intern("A")};
  specs[3].vars = {symbols.Intern("A")};
  for (auto& spec : specs) {
    spec.h = DiscriminatingFunction::UniformHash(P);
  }
  StatusOr<RewriteBundle> bundle = RewriteGeneral(*program, info, P, specs);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }

  Database edb;
  GenerateIr(&symbols, &edb, 400, 60, 77);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("parallel (%d processors): pt %zu, heap_pt %zu, %llu firings, "
              "%llu cross messages\n\n",
              P, result->output.Find(pt)->size(),
              result->output.Find(heap_pt)->size(),
              static_cast<unsigned long long>(result->total_firings),
              static_cast<unsigned long long>(result->cross_tuples));

  TextTable table({"proc", "firings", "tuples out", "received"});
  for (size_t i = 0; i < result->workers.size(); ++i) {
    const WorkerStats& w = result->workers[i];
    table.AddRow({TextTable::Cell(static_cast<int>(i)),
                  TextTable::Cell(w.firings),
                  TextTable::Cell(w.out_inserted),
                  TextTable::Cell(w.received)});
  }
  table.Print();

  bool same =
      result->output.Find(pt)->ToSortedString(symbols) ==
          seq_db.Find(pt)->ToSortedString(symbols) &&
      result->output.Find(heap_pt)->ToSortedString(symbols) ==
          seq_db.Find(heap_pt)->ToSortedString(symbols);
  std::printf("\nparallel == sequential: %s (Theorem 5)\n",
              same ? "yes" : "NO!");
  std::printf("non-redundant: %s (Theorem 6, firings %llu vs %llu)\n",
              result->total_firings <= seq_stats.firings ? "yes" : "NO!",
              static_cast<unsigned long long>(result->total_firings),
              static_cast<unsigned long long>(seq_stats.firings));
  return same ? 0 : 1;
}
