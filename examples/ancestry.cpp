// Ancestry at scale: the three parallelizations of Section 4 side by
// side on a synthetic genealogy, showing the paper's trade-off between
// base-relation placement and communication.
//
//   Example 1 (Wolfson-Silberschatz): no communication, par replicated.
//   Example 2 (Valduriez-Khoshafian): arbitrary fragments, broadcast.
//   Example 3 (this paper):           disjoint fragments, point-to-point.
#include <cstdio>
#include <string>

#include "core/engine.h"
#include "core/partition.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "util/table.h"
#include "workload/generators.h"

using namespace pdatalog;

namespace {

constexpr int kProcessors = 4;

struct SchemeRun {
  std::string name;
  uint64_t firings = 0;
  uint64_t cross = 0;
  uint64_t self = 0;
  uint64_t replicated_base_rows = 0;
  bool correct = false;
};

}  // namespace

int main() {
  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- par(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(*program, info);

  // A genealogy: a ternary family tree, 5 generations deep.
  Database base;
  size_t edges = GenTree(&symbols, &base, "par", 3, 5);
  std::printf("genealogy: %zu parent-child edges, %d processors\n\n", edges,
              kProcessors);

  // Sequential reference.
  Database seq_db;
  {
    const Relation* par = base.Find(symbols.Lookup("par"));
    Relation& copy = seq_db.GetOrCreate(symbols.Lookup("par"), 2);
    for (size_t r = 0; r < par->size(); ++r) copy.Insert(par->row(r));
  }
  EvalStats seq_stats;
  (void)SemiNaiveEvaluate(*program, info, &seq_db, &seq_stats);
  std::string expected =
      seq_db.Find(symbols.Lookup("anc"))->ToSortedString(symbols);
  std::printf("sequential: %zu anc tuples, %llu firings\n\n",
              seq_db.Find(symbols.Lookup("anc"))->size(),
              static_cast<unsigned long long>(seq_stats.firings));

  auto run_scheme = [&](const std::string& name,
                        const LinearSchemeOptions& options) {
    SchemeRun run;
    run.name = name;
    StatusOr<RewriteBundle> bundle = RewriteLinearSirup(
        *program, info, *sirup, kProcessors, options);
    if (!bundle.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   bundle.status().ToString().c_str());
      return run;
    }
    for (const BaseOccurrence& occ : bundle->base_occurrences) {
      if (occ.access == BaseOccurrence::Access::kReplicated) {
        run.replicated_base_rows += base.Find(symbols.Lookup("par"))->size();
      }
    }
    Database edb;
    const Relation* par = base.Find(symbols.Lookup("par"));
    Relation& copy = edb.GetOrCreate(symbols.Lookup("par"), 2);
    for (size_t r = 0; r < par->size(); ++r) copy.Insert(par->row(r));
    StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
    if (!result.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   result.status().ToString().c_str());
      return run;
    }
    run.firings = result->total_firings;
    run.cross = result->cross_tuples;
    run.self = result->self_tuples;
    run.correct = result->output.Find(symbols.Lookup("anc"))
                      ->ToSortedString(symbols) == expected;
    return run;
  };

  std::vector<SchemeRun> runs;

  {  // Example 1: v(r) = v(e) = <Y>.
    LinearSchemeOptions options;
    options.v_r = {symbols.Intern("Y")};
    options.v_e = {symbols.Intern("Y")};
    options.h = DiscriminatingFunction::UniformHash(kProcessors);
    runs.push_back(run_scheme("example1 (no-comm)", options));
  }
  {  // Example 2: arbitrary fragmentation of par.
    LinearSchemeOptions options;
    options.v_r = {symbols.Intern("X"), symbols.Intern("Z")};
    options.v_e = {symbols.Intern("X"), symbols.Intern("Y")};
    options.h = MakeArbitraryFragmentation(
        *base.Find(symbols.Lookup("par")), kProcessors, 42);
    runs.push_back(run_scheme("example2 (broadcast)", options));
  }
  {  // Example 3: v(e) = <X>, v(r) = <Z>.
    LinearSchemeOptions options;
    options.v_r = {symbols.Intern("Z")};
    options.v_e = {symbols.Intern("X")};
    options.h = DiscriminatingFunction::UniformHash(kProcessors);
    runs.push_back(run_scheme("example3 (point-to-point)", options));
  }

  TextTable table({"scheme", "firings", "cross-msgs", "self-msgs",
                   "replicated base rows", "correct"});
  for (const SchemeRun& run : runs) {
    table.AddRow({run.name, TextTable::Cell(run.firings),
                  TextTable::Cell(run.cross), TextTable::Cell(run.self),
                  TextTable::Cell(run.replicated_base_rows),
                  run.correct ? "yes" : "NO"});
  }
  table.Print();

  std::printf(
      "\nreading guide: all three schemes do the same total work\n"
      "(non-redundant, Theorem 2) but occupy different points on the\n"
      "storage/communication spectrum: example1 replicates par and never\n"
      "communicates; example2 accepts any fragmentation of par but\n"
      "broadcasts every tuple; example3 uses disjoint fragments and sends\n"
      "each tuple to exactly one processor (Section 4.3).\n");
  return 0;
}
