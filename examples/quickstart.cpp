// Quickstart: parse a Datalog program, evaluate it sequentially, then
// evaluate it in parallel with the paper's Section 3 scheme and compare.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/engine.h"
#include "core/partition.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"

using namespace pdatalog;

int main() {
  // 1. A Datalog program with inline facts: who is an ancestor of whom?
  const char* source = R"(
    % extensional data
    par(abe,  homer).
    par(homer, bart).
    par(homer, lisa).
    par(homer, maggie).
    par(mona, homer).

    % intensional rules: the transitive closure of par
    anc(X, Y) :- par(X, Y).
    anc(X, Y) :- par(X, Z), anc(Z, Y).
  )";

  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(source, &symbols);
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }

  ProgramInfo info;
  Status status = Validate(*program, &info);
  if (!status.ok()) {
    std::fprintf(stderr, "invalid program: %s\n", status.ToString().c_str());
    return 1;
  }

  // 2. Sequential semi-naive evaluation (the baseline of Section 2).
  Database seq_db;
  (void)seq_db.LoadFacts(*program);
  EvalStats seq_stats;
  status = SemiNaiveEvaluate(*program, info, &seq_db, &seq_stats);
  if (!status.ok()) {
    std::fprintf(stderr, "evaluation failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  Symbol anc = symbols.Lookup("anc");
  std::printf("sequential semi-naive: %zu anc tuples, %llu firings, %d rounds\n",
              seq_db.Find(anc)->size(),
              static_cast<unsigned long long>(seq_stats.firings),
              seq_stats.rounds);

  // 3. Parallelize with Example 3 of the paper: v(e) = <X>, v(r) = <Z>,
  //    one shared hash discriminating function, 4 processors.
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(*program, info);
  if (!sirup.ok()) {
    std::fprintf(stderr, "not a linear sirup: %s\n",
                 sirup.status().ToString().c_str());
    return 1;
  }
  LinearSchemeOptions options;
  options.v_r = {symbols.Intern("Z")};
  options.v_e = {symbols.Intern("X")};
  options.h = DiscriminatingFunction::UniformHash(4);
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(*program, info, *sirup, 4, options);
  if (!bundle.ok()) {
    std::fprintf(stderr, "rewrite failed: %s\n",
                 bundle.status().ToString().c_str());
    return 1;
  }

  std::printf("\nper-processor program Q_0 (the paper's rewriting):\n%s\n",
              ToString(bundle->per_processor[0]).c_str());

  Database edb;
  (void)edb.LoadFacts(*program);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  if (!result.ok()) {
    std::fprintf(stderr, "parallel run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("parallel (4 processors): %llu anc tuples, %llu firings, "
              "%llu cross-processor messages\n",
              static_cast<unsigned long long>(result->pooled_tuples),
              static_cast<unsigned long long>(result->total_firings),
              static_cast<unsigned long long>(result->cross_tuples));

  // 4. The answers agree (Theorem 1), and no work was duplicated
  //    (Theorem 2: firings match the sequential count exactly).
  std::printf("\nanc relation:\n%s",
              result->output.Find(anc)->ToSortedString(symbols).c_str());
  bool same = result->output.Find(anc)->ToSortedString(symbols) ==
              seq_db.Find(anc)->ToSortedString(symbols);
  std::printf("\nparallel == sequential: %s\n", same ? "yes" : "NO!");
  std::printf("non-redundant (firings equal): %s\n",
              result->total_firings == seq_stats.firings ? "yes" : "NO!");
  return same ? 0 : 1;
}
