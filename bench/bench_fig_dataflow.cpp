// FIG-1 / FIG-2: regenerates the paper's Figures 1 and 2 — the dataflow
// graphs of Example 4 and of the ancestor rule — plus Theorem 3's
// conclusion for each.
#include <cstdio>

#include "bench_util.h"

using namespace pdatalog;

namespace {

void ShowDataflow(const char* figure, const char* source,
                  const char* expected) {
  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(source, &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(*program, info);
  DataflowGraph graph = DataflowGraph::Build(*sirup);

  std::printf("--- %s ---\n", figure);
  std::printf("rule: %s\n", ToString(sirup->rec, symbols).c_str());
  std::printf("measured dataflow graph: %s\n", graph.ToString().c_str());
  std::printf("paper:                   %s\n", expected);
  std::printf("cycle: %s", graph.HasCycle() ? "yes" : "no");
  if (graph.HasCycle()) {
    StatusOr<LinearSchemeOptions> scheme =
        CommunicationFreeScheme(*sirup, 4);
    if (scheme.ok()) {
      std::printf(" -> Theorem 3: communication-free with v(r) = <");
      for (size_t i = 0; i < scheme->v_r.size(); ++i) {
        std::printf("%s%s", i ? ", " : "",
                    symbols.Name(scheme->v_r[i]).c_str());
      }
      std::printf(">");
    }
  } else {
    std::printf(" -> communication needed for any discriminating choice "
                "pushing selections into the body");
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  std::printf("Reproduction of Figures 1 and 2 (Section 5).\n\n");

  ShowDataflow("Figure 1 (Example 4)",
               "p(U, V, W) :- s(U, V, W).\n"
               "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
               "1 -> 2, 2 -> 3   (the paper draws 1 -> 2 -> 3)");

  ShowDataflow("Figure 2 (Example 5, ancestor)",
               bench::kAncestorSource,
               "2 -> 2   (self-loop; hence Example 1 needs no "
               "communication)");
  return 0;
}
