// Shared helpers for the benchmark harnesses in bench/.
//
// Each bench binary reproduces one experiment id of DESIGN.md's
// per-experiment index and prints (a) the series/rows the paper's
// artifact shows and (b) a "paper:" line stating the expected shape, so
// EXPERIMENTS.md can record paper-vs-measured side by side.
#ifndef PDATALOG_BENCH_BENCH_UTIL_H_
#define PDATALOG_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/dataflow_graph.h"
#include "core/engine.h"
#include "core/network_graph.h"
#include "core/partition.h"
#include "datalog/parser.h"
#include "eval/seminaive.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "workload/generators.h"

namespace pdatalog {
namespace bench {

inline constexpr char kAncestorSource[] =
    "anc(X, Y) :- par(X, Y).\n"
    "anc(X, Y) :- par(X, Z), anc(Z, Y).\n";

// Parsed + analyzed ancestor program with helpers for repeated runs.
struct AncestorHarness {
  SymbolTable symbols;
  Program program;
  ProgramInfo info;
  LinearSirup sirup;

  AncestorHarness() {
    StatusOr<Program> parsed = ParseProgram(kAncestorSource, &symbols);
    if (!parsed.ok()) Die("parse", parsed.status());
    program = std::move(*parsed);
    Status status = Validate(program, &info);
    if (!status.ok()) Die("validate", status);
    StatusOr<LinearSirup> s = ExtractLinearSirup(program, info);
    if (!s.ok()) Die("sirup", s.status());
    sirup = std::move(*s);
  }

  static void Die(const char* what, const Status& status) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }

  Symbol par() { return symbols.Intern("par"); }
  Symbol anc() { return symbols.Intern("anc"); }
  Symbol Var(const char* name) { return symbols.Intern(name); }

  // Copies the `par` relation of `source` into a fresh database.
  Database CloneEdb(const Database& source) {
    Database db;
    const Relation* rel = source.Find(par());
    if (rel != nullptr) {
      Relation& copy = db.GetOrCreate(par(), 2);
      for (size_t r = 0; r < rel->size(); ++r) copy.Insert(rel->row(r));
    }
    return db;
  }

  // Sequential semi-naive over a copy of `source`'s par relation.
  EvalStats RunSequential(const Database& source) {
    Database db = CloneEdb(source);
    EvalStats stats;
    Status status = SemiNaiveEvaluate(program, info, &db, &stats);
    if (!status.ok()) Die("sequential", status);
    return stats;
  }

  // Section 4 scheme options by name.
  LinearSchemeOptions Example1(int P, uint64_t seed = 0x5eed) {
    LinearSchemeOptions o;
    o.v_r = {Var("Y")};
    o.v_e = {Var("Y")};
    o.h = DiscriminatingFunction::UniformHash(P, seed);
    return o;
  }
  LinearSchemeOptions Example2(const Database& edb, int P,
                               uint64_t seed = 0x5eed) {
    LinearSchemeOptions o;
    o.v_r = {Var("X"), Var("Z")};
    o.v_e = {Var("X"), Var("Y")};
    const Relation* rel = edb.Find(par());
    o.h = MakeArbitraryFragmentation(*rel, P, seed);
    return o;
  }
  LinearSchemeOptions Example3(int P, uint64_t seed = 0x5eed) {
    LinearSchemeOptions o;
    o.v_r = {Var("Z")};
    o.v_e = {Var("X")};
    o.h = DiscriminatingFunction::UniformHash(P, seed);
    return o;
  }

  ParallelResult RunScheme(const Database& source,
                           const LinearSchemeOptions& options, int P,
                           const ParallelOptions& popts = {}) {
    StatusOr<RewriteBundle> bundle =
        RewriteLinearSirup(program, info, sirup, P, options);
    if (!bundle.ok()) Die("rewrite", bundle.status());
    Database edb = CloneEdb(source);
    StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, popts);
    if (!result.ok()) Die("parallel", result.status());
    return std::move(*result);
  }
};

// Named workload topologies used across the benches.
inline size_t GenerateTopology(const std::string& name, SymbolTable* symbols,
                               Database* db, const std::string& predicate,
                               uint64_t seed) {
  if (name == "chain") return GenChain(symbols, db, predicate, 200);
  if (name == "tree") return GenTree(symbols, db, predicate, 3, 5);
  if (name == "random") {
    return GenRandomGraph(symbols, db, predicate, 150, 450, seed);
  }
  if (name == "grid") return GenGrid(symbols, db, predicate, 12, 12);
  if (name == "cycle") return GenCycle(symbols, db, predicate, 60);
  std::fprintf(stderr, "unknown topology %s\n", name.c_str());
  std::exit(1);
}

}  // namespace bench
}  // namespace pdatalog

#endif  // PDATALOG_BENCH_BENCH_UTIL_H_
