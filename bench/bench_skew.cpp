// EXP-10: skew-adaptive repartitioning — the rebalancer against a
// Zipf-skewed ancestor workload on the Example 3 hash scheme.
//
// The workload hashes on the recursive join variable Z, so a node with
// very high in-degree concentrates its join firings on one processor:
// the straggler the profiler names. With --rebalance-skew the
// coordinator moves (or replicates) the hot discriminating-hash buckets
// between rounds; the firings concentration and the modeled makespan
// must both drop while the fixpoint stays bit-identical.
//
// The container this reproduction runs on is single-core, so the
// headline metrics are the work-model ones (max/mean firings and
// ModeledMakespan — see DESIGN.md), not wall time.
//
// `bench_skew smoke` runs a smaller input for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "bench_util.h"
#include "core/rebalance.h"

using namespace pdatalog;
using bench::AncestorHarness;

namespace {

double FiringsSkew(const ParallelResult& result) {
  uint64_t max = 0;
  uint64_t total = 0;
  for (const WorkerStats& w : result.workers) {
    max = std::max(max, w.firings);
    total += w.firings;
  }
  if (total == 0 || result.workers.empty()) return 1.0;
  double mean =
      static_cast<double>(total) / static_cast<double>(result.workers.size());
  return static_cast<double>(max) / mean;
}

std::string AncDump(const ParallelResult& result, AncestorHarness* h) {
  const Relation* rel = result.output.Find(h->anc());
  return rel == nullptr ? "" : rel->ToSortedString(h->symbols);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  // A lower Zipf exponent spreads the heat over several hot keys (one
  // mega-key is unsplittable at bucket granularity: max/mean can never
  // drop below the key's share of the total), and a sparse graph keeps
  // the fixpoint running long enough for mid-run decisions to matter.
  const int P = 8;
  const int nodes = smoke ? 300 : 1200;
  const int edges = smoke ? 750 : 3000;
  const double exponent = 1.2;

  AncestorHarness h;
  Database base;
  size_t inserted =
      GenZipfGraph(&h.symbols, &base, "par", nodes, edges, exponent, 3);

  bench::BenchJson json("skew");
  std::printf(
      "EXP-10: skew-adaptive repartitioning (ancestor/example3, %d "
      "processors,\nZipf(%.1f) graph: %zu edges over %d nodes).\n"
      "expectation: the hot join-variable bucket concentrates firings on\n"
      "one processor; rebalancing moves it and flattens the distribution\n"
      "without changing the fixpoint.\n\n",
      P, exponent, inserted, nodes);

  LinearSchemeOptions scheme = h.Example3(P);
  // Rebalancing precondition: bases replicated, not fragmented (a
  // fragmented base cannot follow a moved bucket).
  scheme.fragment_bases = false;

  ParallelOptions off;
  off.use_threads = false;  // deterministic round-robin schedule
  ParallelResult before = h.RunScheme(base, scheme, P, off);

  ParallelOptions on = off;
  // Act early: the hot bucket dominates the heat histogram from the
  // first rounds, and semi-naive discovers most derivations in the early
  // rounds — a late move has nothing left to shed. The long default
  // cooldown still prevents thrash, and the coordinator stops on its own
  // once skew falls under the threshold.
  on.rebalance.skew_threshold = 1.3;
  on.rebalance.min_window_busy_ns = 100'000;
  ParallelResult after = h.RunScheme(base, scheme, P, on);

  const double skew_before = FiringsSkew(before);
  const double skew_after = FiringsSkew(after);
  const double makespan_before = before.ModeledMakespan(1.0, 1.0);
  const double makespan_after = after.ModeledMakespan(1.0, 1.0);
  const double skew_drop = 1.0 - skew_after / skew_before;
  const double makespan_drop = 1.0 - makespan_after / makespan_before;
  const uint64_t moves = after.metrics.counter("rebalance.moves");
  const uint64_t replications =
      after.metrics.counter("rebalance.replications");
  const bool identical = AncDump(before, &h) == AncDump(after, &h);
  // The acceptance bar: >=30% less firings concentration, >=15% less
  // modeled makespan, bit-identical fixpoint. The smoke input is a CI
  // sanity check on a much smaller closure (fewer rounds for decisions
  // to pay off in), so it carries a proportionally smaller bar.
  const double skew_bar = smoke ? 0.15 : 0.30;
  const double makespan_bar = smoke ? 0.05 : 0.15;
  const bool improved =
      identical && skew_drop >= skew_bar && makespan_drop >= makespan_bar;

  TextTable table({"rebalance", "max/mean firings", "modeled makespan",
                   "moves", "replications", "wall ms"});
  table.AddRow({TextTable::Cell("off"), TextTable::Cell(skew_before, 3),
                TextTable::Cell(makespan_before, 0), TextTable::Cell(0),
                TextTable::Cell(0),
                TextTable::Cell(before.wall_seconds * 1e3, 2)});
  table.AddRow({TextTable::Cell("on"), TextTable::Cell(skew_after, 3),
                TextTable::Cell(makespan_after, 0), TextTable::Cell(moves),
                TextTable::Cell(replications),
                TextTable::Cell(after.wall_seconds * 1e3, 2)});
  table.Print();

  std::printf("\nper-worker firings (off):");
  for (const WorkerStats& w : before.workers) {
    std::printf(" %llu", static_cast<unsigned long long>(w.firings));
  }
  std::printf("\nper-worker firings (on): ");
  for (const WorkerStats& w : after.workers) {
    std::printf(" %llu", static_cast<unsigned long long>(w.firings));
  }
  std::printf("\ndecisions:\n");
  for (const RebalanceLogEntry& e : after.rebalance_log) {
    std::printf(
        "  window %llu: bucket %u from %d to %s (%llu work units, skew "
        "%.2f)\n",
        static_cast<unsigned long long>(e.window), e.bucket, e.from,
        e.to < 0 ? "replicate" : std::to_string(e.to).c_str(),
        static_cast<unsigned long long>(e.tuples), e.skew);
  }
  std::printf(
      "\nskew ratio %.3f -> %.3f (-%.0f%%), modeled makespan %.0f -> %.0f "
      "(-%.0f%%)\nfixpoint identical: %s, decisions: %llu moves + %llu "
      "replications\n",
      skew_before, skew_after, skew_drop * 100.0, makespan_before,
      makespan_after, makespan_drop * 100.0, identical ? "yes" : "NO",
      static_cast<unsigned long long>(moves),
      static_cast<unsigned long long>(replications));

  json.NewRecord()
      .Set("processors", P)
      .Set("nodes", nodes)
      .Set("edges", static_cast<uint64_t>(inserted))
      .Set("zipf_exponent", exponent)
      .Set("skew_ratio_before", skew_before)
      .Set("skew_ratio_after", skew_after)
      .Set("skew_reduction", skew_drop)
      .Set("makespan_before", makespan_before)
      .Set("makespan_after", makespan_after)
      .Set("makespan_reduction", makespan_drop)
      .Set("moves", moves)
      .Set("replications", replications)
      .Set("epochs", after.metrics.counter("rebalance.rounds"))
      .Set("wall_ms_before", before.wall_seconds * 1e3)
      .Set("wall_ms_after", after.wall_seconds * 1e3)
      .Set("fixpoint_identical", identical)
      .Set("skew_improved", improved);
  json.WriteFile();

  if (!identical) {
    std::fprintf(stderr, "FIXPOINT MISMATCH: rebalancing changed results\n");
    return 1;
  }
  return 0;
}
