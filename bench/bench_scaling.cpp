// EXP-7: load distribution and modeled makespan versus processor count —
// the quantitative study the paper explicitly defers to future work
// ("load balancing, processor utilization etc.", Section 8).
//
// The host here is single-core, so wall time cannot show speedup; the
// deterministic work metrics can. We report, per N: the maximum and
// mean per-processor firings, the load imbalance, cross traffic, and
// the modeled makespan under two cost regimes (cheap and expensive
// communication).
#include <cstdio>

#include "bench_json.h"
#include "bench_util.h"
#include "core/report.h"
#include "obs/analyze.h"
#include "obs/trace.h"

using namespace pdatalog;
using bench::AncestorHarness;

int main() {
  bench::BenchJson json("scaling");
  std::printf(
      "EXP-7: scaling with processors (ancestor, Example 3 scheme).\n"
      "paper: qualitative only; expectation: per-processor work shrinks\n"
      "~1/N under hash partitioning, while total work stays constant\n"
      "(non-redundancy), so modeled speedup approaches N until\n"
      "communication costs dominate.\n\n");

  for (const char* topology : {"random", "grid", "tree"}) {
    AncestorHarness h;
    Database base;
    size_t edges =
        bench::GenerateTopology(topology, &h.symbols, &base, "par", 21);
    EvalStats seq = h.RunSequential(base);
    std::printf("topology=%s edges=%zu   sequential firings: %llu\n",
                topology, edges,
                static_cast<unsigned long long>(seq.firings));

    TextTable table({"N", "max firings", "mean firings", "imbalance",
                     "cross-msgs", "speedup(net=0)", "speedup(net=4)",
                     "wall ms"});
    for (int P : {1, 2, 4, 8, 16}) {
      ParallelResult r = h.RunScheme(base, h.Example3(P), P);
      // Tracer-on re-run of the same scheme: the delta quantifies the
      // observability overhead the acceptance gate bounds (< 3% when
      // the tracer is disabled; this measures the *enabled* side too).
      Tracer tracer(P);
      ParallelOptions traced_opts;
      traced_opts.tracer = &tracer;
      ParallelResult traced =
          h.RunScheme(base, h.Example3(P), P, traced_opts);
      double trace_overhead_pct =
          r.wall_seconds == 0
              ? 0.0
              : (traced.wall_seconds - r.wall_seconds) / r.wall_seconds *
                    100.0;
      uint64_t max_firings = 0;
      uint64_t sum_firings = 0;
      for (const WorkerStats& w : r.workers) {
        max_firings = std::max(max_firings, w.firings);
        sum_firings += w.firings;
      }
      double mean = static_cast<double>(sum_firings) / P;
      double imbalance =
          mean == 0 ? 1.0 : static_cast<double>(max_firings) / mean;
      double cheap = r.ModeledMakespan(1.0, 0.0);
      double costly = r.ModeledMakespan(1.0, 4.0);
      double seq_work = static_cast<double>(seq.firings);
      table.AddRow(
          {TextTable::Cell(P), TextTable::Cell(max_firings),
           TextTable::Cell(mean, 1), TextTable::Cell(imbalance, 2),
           TextTable::Cell(r.cross_tuples),
           TextTable::Cell(cheap == 0 ? 0.0 : seq_work / cheap, 2),
           TextTable::Cell(costly == 0 ? 0.0 : seq_work / costly, 2),
           TextTable::Cell(r.wall_seconds * 1e3, 1)});
      bench::JsonRecord& rec = json.NewRecord();
      rec.Set("topology", topology)
          .Set("processors", P)
          .Set("max_firings", max_firings)
          .Set("mean_firings", mean)
          .Set("imbalance", imbalance)
          .Set("cross_msgs", r.cross_tuples)
          .Set("cross_frames", r.cross_frames)
          .Set("cross_bytes", r.cross_bytes)
          .Set("tuples_per_frame",
               r.cross_frames == 0
                   ? 0.0
                   : static_cast<double>(r.cross_tuples) /
                         static_cast<double>(r.cross_frames))
          .Set("speedup_net0", cheap == 0 ? 0.0 : seq_work / cheap)
          .Set("speedup_net4", costly == 0 ? 0.0 : seq_work / costly)
          .Set("wall_ms", r.wall_seconds * 1e3)
          .Set("trace_overhead_pct", trace_overhead_pct)
          .Set("trace_events", tracer.total_events());
      // Profiler-derived load metrics from the traced re-run: measured
      // busy-time skew (vs. the firing-count `imbalance` above) and the
      // probe latency tail.
      ProfileReport prof = AnalyzeRun(tracer, MakeProfileContext(traced));
      const Histogram* probe =
          traced.metrics.FindHistogram("hist.probe_ns");
      rec.Set("skew_ratio", prof.skew_ratio)
          .Set("probe_p99_ns",
               probe == nullptr ? 0.0 : probe->Percentile(99));
    }
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "reading guide: speedup(net=0) tracks N/imbalance — near-linear\n"
      "for hash-partitioned work; speedup(net=4) saturates as the\n"
      "received-message cost approaches the per-processor compute cost,\n"
      "which is the architecture-dependent crossover Section 8\n"
      "anticipates. Wall time is reported for completeness only (the\n"
      "container is single-core; threads cannot run concurrently).\n");
  json.WriteFile();
  return 0;
}
