// EXP-10: transport backends — the mutex reference queue versus the
// bounded lock-free SPSC ring (--transport=spsc), in the regime the
// ring is built for: small blocks at a high frame rate, where per-frame
// backend overhead (lock acquisitions, empty-channel polls) dominates
// the payload work.
//
// Three layers, each against both backends:
//   pump     one producer, one consumer, one channel; block-size sweep.
//   shuffle  8 workers over the full P x P CommNetwork, each
//            interleaving all-to-all sends with inbound drain sweeps —
//            the engine's communication pattern without the join work.
//            Empty-channel polls are part of the measured loop on
//            purpose: a worker polls every inbound channel each sweep,
//            and the mutex backend pays a lock per poll while the ring
//            pays one acquire load.
//   engine   end-to-end ancestor fixpoint (Example 3, 8 workers, small
//            flush threshold); full mode only.
//
// `bench_transport smoke` shrinks the pump and skips the engine layer;
// the shuffle runs the same configuration in both modes so its records
// stay comparable against BENCH_transport.baseline.json (CI diffs them
// with tools/bench_diff.py and greps the summary's spsc_speedup flag).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "bench_util.h"
#include "core/transport.h"

using namespace pdatalog;

namespace {

TupleBlock MakeBlock(int arity, uint32_t tuples, Value seed) {
  TupleBlock block;
  block.predicate = 1;
  block.arity = arity;
  std::vector<Value> row(arity);
  for (uint32_t t = 0; t < tuples; ++t) {
    for (int c = 0; c < arity; ++c) row[c] = seed + t * arity + c;
    block.Append(row.data(), arity);
  }
  return block;
}

void InstallSpsc(Channel* channel, size_t ring_frames) {
  TransportOptions opts;
  opts.ring_frames = ring_frames;
  channel->set_transport(MakeTransport(TransportKind::kSpsc, opts));
}

// --------------------------------------------------------------------
// pump: 1 producer, 1 consumer, 1 channel
// --------------------------------------------------------------------

// Payload frames are built before the clock starts and drained frames
// are retained (freed after the clock stops): block construction is
// join work and deallocation is allocator work, both identical across
// backends — the measured loop is moves, counters, and the backend.
double PumpOnce(TransportKind kind, int block_tuples, uint64_t frames) {
  Channel channel;
  if (kind == TransportKind::kSpsc) InstallSpsc(&channel, 4096);
  std::vector<TupleBlock> outbound;
  outbound.reserve(frames);
  for (uint64_t f = 0; f < frames; ++f) {
    outbound.push_back(
        MakeBlock(2, block_tuples, static_cast<Value>(f)));
  }
  std::vector<TupleBlock> inbound;
  inbound.reserve(frames);

  Stopwatch watch;
  std::thread consumer([&channel, &inbound, frames] {
    while (inbound.size() < frames) {
      if (channel.DrainBlocks(&inbound) == 0) std::this_thread::yield();
    }
  });
  for (TupleBlock& block : outbound) channel.SendBlock(std::move(block));
  consumer.join();
  return watch.ElapsedSeconds();
}

// --------------------------------------------------------------------
// shuffle: P workers, all-to-all over a CommNetwork
// --------------------------------------------------------------------

struct Mailbox {
  CommNetwork* net = nullptr;
  int id = 0;
  std::vector<TupleBlock> inbound;  // retained; freed off the clock

  // Receiver-side sweep over every inbound channel; also the stall
  // handler for this worker's outbound sends (mirrors the engine:
  // a sender blocked on a full ring drains its own inbound channels,
  // which is what unblocks the cycle).
  void DrainSweep() {
    const int P = net->num_processors();
    for (int from = 0; from < P; ++from) {
      net->channel(from, id).DrainBlocks(&inbound);
    }
  }
};

double ShuffleOnce(TransportKind kind, int P, int block_tuples,
                   int frames_per_dest, int sends_per_sweep) {
  CommNetwork network(P);
  std::vector<Mailbox> mail(P);
  const uint64_t expect =
      static_cast<uint64_t>(P) * frames_per_dest;  // inbound per worker
  for (int i = 0; i < P; ++i) {
    mail[i].net = &network;
    mail[i].id = i;
    mail[i].inbound.reserve(expect);
  }
  if (kind == TransportKind::kSpsc) {
    TransportOptions opts;
    opts.ring_frames = 1024;
    opts.blocking = true;
    InstallTransports(&network, TransportKind::kSpsc, opts);
    for (int i = 0; i < P; ++i) {
      for (int j = 0; j < P; ++j) {
        network.channel(i, j).transport()->set_stall_handler(
            [mb = &mail[i]] {
              mb->DrainSweep();
              return true;
            });
      }
    }
  }

  // Outbound payloads are pre-built per worker so the measured loop is
  // sends, polls, and drains — not block construction.
  std::vector<std::vector<TupleBlock>> outbound(P);
  for (int i = 0; i < P; ++i) {
    outbound[i].reserve(expect);
    for (int f = 0; f < frames_per_dest; ++f) {
      for (int j = 0; j < P; ++j) {
        outbound[i].push_back(
            MakeBlock(2, block_tuples, static_cast<Value>(f * P + j)));
      }
    }
  }

  Stopwatch watch;
  std::vector<std::thread> workers;
  workers.reserve(P);
  for (int i = 0; i < P; ++i) {
    workers.emplace_back([&network, &mail, &outbound, i, P,
                          frames_per_dest, sends_per_sweep, expect] {
      Mailbox& mb = mail[i];
      int since_sweep = 0;
      size_t next = 0;
      for (int f = 0; f < frames_per_dest; ++f) {
        for (int j = 0; j < P; ++j) {
          network.channel(i, j).SendBlock(std::move(outbound[i][next++]));
          if (++since_sweep >= sends_per_sweep) {
            since_sweep = 0;
            mb.DrainSweep();
          }
        }
      }
      while (mb.inbound.size() < expect) {
        mb.DrainSweep();
        if (mb.inbound.size() < expect) std::this_thread::yield();
      }
    });
  }
  for (std::thread& t : workers) t.join();
  return watch.ElapsedSeconds();
}

double MinOf(double (*run)(TransportKind, int, uint64_t), TransportKind kind,
             int block, uint64_t frames, int repeats) {
  double best = run(kind, block, frames);
  for (int r = 1; r < repeats; ++r) {
    best = std::min(best, run(kind, block, frames));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  const int repeats = smoke ? 2 : 5;
  bench::BenchJson json("transport");
  std::printf(
      "EXP-10: transport backends (mutex reference vs lock-free SPSC"
      " ring).\nexpectation: the ring wins where per-frame overhead"
      " dominates —\nsmall blocks, high frame rates, many empty-channel"
      " polls — and the\ngap closes as blocks grow and payload work"
      " amortizes the backend.\n\n");

  // ---- pump ----
  const uint64_t pump_tuples = smoke ? 200000 : 1000000;
  TextTable pump({"block-tuples", "frames", "mutex ms", "spsc ms",
                  "speedup"});
  for (int block : {1, 8, 64, 256}) {
    const uint64_t frames =
        std::max<uint64_t>(pump_tuples / block, smoke ? 4000 : 20000);
    double mutex_wall = MinOf(PumpOnce, TransportKind::kMutex, block,
                              frames, repeats);
    double spsc_wall =
        MinOf(PumpOnce, TransportKind::kSpsc, block, frames, repeats);
    double speedup = spsc_wall == 0 ? 0.0 : mutex_wall / spsc_wall;
    pump.AddRow({TextTable::Cell(block), TextTable::Cell(frames),
                 TextTable::Cell(mutex_wall * 1e3, 2),
                 TextTable::Cell(spsc_wall * 1e3, 2),
                 TextTable::Cell(speedup, 2)});
    json.NewRecord()
        .Set("id", "pump_b" + std::to_string(block))
        .Set("layer", "pump")
        .Set("block_tuples", block)
        .Set("frames", frames)
        .Set("mutex_wall_ms", mutex_wall * 1e3)
        .Set("spsc_wall_ms", spsc_wall * 1e3)
        .Set("transport_speedup", speedup);
  }
  std::printf("pump: one channel, producer vs consumer thread\n");
  pump.Print();
  std::printf("\n");

  // ---- shuffle (same configuration in smoke and full) ----
  const int P = 8;
  const int frames_per_dest = 2000;
  const int sends_per_sweep = 16;
  double small_block_speedup = -1.0;  // min over the block<=64 sweep
  TextTable shuffle({"block-tuples", "frames/worker", "mutex ms",
                     "spsc ms", "speedup"});
  for (int block : {1, 16, 64}) {
    auto run = [&](TransportKind kind) {
      double best =
          ShuffleOnce(kind, P, block, frames_per_dest, sends_per_sweep);
      for (int r = 1; r < repeats; ++r) {
        best = std::min(best, ShuffleOnce(kind, P, block, frames_per_dest,
                                          sends_per_sweep));
      }
      return best;
    };
    double mutex_wall = run(TransportKind::kMutex);
    double spsc_wall = run(TransportKind::kSpsc);
    double speedup = spsc_wall == 0 ? 0.0 : mutex_wall / spsc_wall;
    if (small_block_speedup < 0 || speedup < small_block_speedup) {
      small_block_speedup = speedup;
    }
    shuffle.AddRow({TextTable::Cell(block),
                    TextTable::Cell(static_cast<uint64_t>(P) *
                                    frames_per_dest),
                    TextTable::Cell(mutex_wall * 1e3, 2),
                    TextTable::Cell(spsc_wall * 1e3, 2),
                    TextTable::Cell(speedup, 2)});
    json.NewRecord()
        .Set("id", "shuffle_b" + std::to_string(block))
        .Set("layer", "shuffle")
        .Set("workers", P)
        .Set("block_tuples", block)
        .Set("frames_per_dest", frames_per_dest)
        .Set("mutex_wall_ms", mutex_wall * 1e3)
        .Set("spsc_wall_ms", spsc_wall * 1e3)
        .Set("transport_speedup", speedup);
  }
  std::printf("shuffle: %d workers all-to-all, drain sweep every %d sends\n",
              P, sends_per_sweep);
  shuffle.Print();
  std::printf("\n");

  // ---- engine end-to-end (full mode only) ----
  if (!smoke) {
    bench::AncestorHarness h;
    Database base;
    GenRandomGraph(&h.symbols, &base, "par", 200, 600, 7);
    LinearSchemeOptions scheme = h.Example3(P);
    TextTable engine({"backend", "wall ms", "cross frames"});
    double walls[2] = {0, 0};
    for (TransportKind kind :
         {TransportKind::kMutex, TransportKind::kSpsc}) {
      ParallelOptions popts;
      popts.use_threads = true;
      popts.block_tuples = 16;  // small-block regime
      popts.transport = kind;
      ParallelResult r = h.RunScheme(base, scheme, P, popts);
      double wall = r.wall_seconds;
      for (int rep = 1; rep < repeats; ++rep) {
        ParallelResult again = h.RunScheme(base, scheme, P, popts);
        wall = std::min(wall, again.wall_seconds);
      }
      walls[kind == TransportKind::kSpsc] = wall;
      engine.AddRow({TextTable::Cell(TransportKindName(kind)),
                     TextTable::Cell(wall * 1e3, 2),
                     TextTable::Cell(r.cross_frames)});
      json.NewRecord()
          .Set("id", std::string("engine_") + TransportKindName(kind))
          .Set("layer", "engine")
          .Set("workers", P)
          .Set("block_tuples", 16)
          .Set("backend", TransportKindName(kind))
          .Set("wall_ms", wall * 1e3);
    }
    std::printf("engine: ancestor example3, %d workers, block-tuples=16\n",
                P);
    engine.Print();
    std::printf("engine speedup: %.2fx\n\n",
                walls[1] == 0 ? 0.0 : walls[0] / walls[1]);
  }

  // The acceptance gate: the ring must be >= 1.3x across the whole
  // small-block shuffle sweep (block-tuples <= 64, 8 workers).
  json.NewRecord()
      .Set("id", "summary")
      .Set("layer", "summary")
      .Set("small_block_speedup", small_block_speedup)
      .Set("spsc_speedup", small_block_speedup >= 1.3);
  std::printf(
      "reading guide: transport_speedup is mutex wall over spsc wall for\n"
      "the same configuration; the summary's spsc_speedup is true when\n"
      "the ring holds >= 1.3x across the small-block shuffle sweep.\n"
      "small-block shuffle speedup (min over sweep): %.2fx\n",
      small_block_speedup);
  json.WriteFile();
  return 0;
}
