// EXP-8: wire-protocol batching — frames, bytes, and wall time versus
// the block flush threshold, on the paper's two communicating ancestor
// schemes (Example 2's broadcast fragmentation and Example 3's hashed
// point-to-point). --block-tuples=1 reproduces the old per-tuple
// protocol (one frame per tuple) and is the baseline; larger thresholds
// coalesce whole runs of same-predicate tuples into one frame each.
//
// The cross-tuple count is scheme-determined, so it must not move with
// the threshold; frames (and with them header/checksum bytes and lock
// acquisitions) must shrink by the achieved tuples-per-frame factor.
//
// `bench_comm smoke` runs a tiny input for CI.
#include <algorithm>
#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "bench_util.h"

using namespace pdatalog;
using bench::AncestorHarness;

namespace {

ParallelResult RunWithOptions(AncestorHarness* h, const Database& source,
                              const LinearSchemeOptions& scheme, int P,
                              const ParallelOptions& options) {
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(h->program, h->info, h->sirup, P, scheme);
  if (!bundle.ok()) AncestorHarness::Die("rewrite", bundle.status());
  Database edb = h->CloneEdb(source);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, options);
  if (!result.ok()) AncestorHarness::Die("parallel", result.status());
  return std::move(*result);
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  const int P = 4;
  const int repeats = smoke ? 1 : 3;
  bench::BenchJson json("comm");
  std::printf(
      "EXP-8: block wire protocol (ancestor, %d processors).\n"
      "expectation: cross tuples are fixed by the scheme; frames shrink\n"
      "~1/threshold until round boundaries cap the achievable batch, and\n"
      "wall time follows the saved per-frame overhead.\n\n",
      P);

  struct SchemeCase {
    const char* name;
    bool broadcast;  // Example 2 (fragmentation) vs Example 3 (hash)
  };
  for (const SchemeCase& sc :
       {SchemeCase{"example2", true}, SchemeCase{"example3", false}}) {
    AncestorHarness h;
    Database base;
    size_t edges = GenRandomGraph(&h.symbols, &base, "par",
                                  smoke ? 24 : 150, smoke ? 60 : 450, 7);
    LinearSchemeOptions scheme =
        sc.broadcast ? h.Example2(base, P) : h.Example3(P);
    std::printf("scheme=%s edges=%zu\n", sc.name, edges);

    TextTable table({"block-tuples", "cross-tuples", "frames",
                     "tuples/frame", "bytes", "wall ms"});
    uint64_t baseline_frames = 0;
    double baseline_wall = 0;
    for (int block : {1, 8, 64, 256, 1024}) {
      ParallelOptions options;
      options.block_tuples = block;
      ParallelResult r = RunWithOptions(&h, base, scheme, P, options);
      double wall = r.wall_seconds;
      for (int rep = 1; rep < repeats; ++rep) {
        ParallelResult again = RunWithOptions(&h, base, scheme, P, options);
        wall = std::min(wall, again.wall_seconds);
      }
      double tpf = r.cross_frames == 0
                       ? 0.0
                       : static_cast<double>(r.cross_tuples) /
                             static_cast<double>(r.cross_frames);
      if (block == 1) {
        baseline_frames = r.cross_frames;
        baseline_wall = wall;
      }
      table.AddRow({TextTable::Cell(block),
                    TextTable::Cell(r.cross_tuples),
                    TextTable::Cell(r.cross_frames),
                    TextTable::Cell(tpf, 1), TextTable::Cell(r.cross_bytes),
                    TextTable::Cell(wall * 1e3, 2)});
      json.NewRecord()
          .Set("scheme", sc.name)
          .Set("processors", P)
          .Set("block_tuples", block)
          .Set("cross_tuples", r.cross_tuples)
          .Set("cross_frames", r.cross_frames)
          .Set("tuples_per_frame", tpf)
          .Set("cross_bytes", r.cross_bytes)
          .Set("wall_ms", wall * 1e3)
          .Set("frame_reduction",
               r.cross_frames == 0
                   ? 0.0
                   : static_cast<double>(baseline_frames) /
                         static_cast<double>(r.cross_frames))
          .Set("wall_speedup", wall == 0 ? 0.0 : baseline_wall / wall);
    }
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "reading guide: the block-tuples=1 row is the per-tuple protocol;\n"
      "frame_reduction in BENCH_comm.json is its frames divided by each\n"
      "row's frames. Residual bytes per tuple approach 4*arity as the\n"
      "header and checksum amortize across the block.\n");
  json.WriteFile();
  return 0;
}
