// EXP-8: substrate microbenchmarks (google-benchmark): relation insert
// and index probes, semi-naive vs naive evaluation, discriminating
// function throughput, rewrite cost, and an end-to-end parallel run.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "eval/naive.h"

namespace pdatalog {
namespace {

void BM_RelationInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    Relation rel(2);
    for (Value i = 0; i < static_cast<Value>(n); ++i) {
      rel.Insert(Tuple{i, i + 1});
    }
    benchmark::DoNotOptimize(rel.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RelationInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_IndexProbe(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Relation rel(2);
  for (Value i = 0; i < static_cast<Value>(n); ++i) {
    rel.Insert(Tuple{i % 97, i});
  }
  const ColumnIndex& index = rel.EnsureIndex(0b01);
  Value key = 0;
  size_t hits = 0;
  for (auto _ : state) {
    Value k = key % 97;
    ColumnIndex::Probe probe = index.ProbeRange(&k, 1, 0, rel.size());
    uint32_t id = 0;
    while (probe.Next(&id)) ++hits;
    ++key;
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexProbe)->Arg(10000)->Arg(100000);

void BM_SemiNaiveAncestor(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable symbols;
    StatusOr<Program> program =
        ParseProgram(bench::kAncestorSource, &symbols);
    ProgramInfo info;
    (void)Validate(*program, &info);
    Database db;
    GenRandomGraph(&symbols, &db, "par", nodes, nodes * 3, 17);
    state.ResumeTiming();
    EvalStats stats;
    (void)SemiNaiveEvaluate(*program, info, &db, &stats);
    benchmark::DoNotOptimize(stats.firings);
  }
}
BENCHMARK(BM_SemiNaiveAncestor)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_NaiveAncestor(benchmark::State& state) {
  const int nodes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    SymbolTable symbols;
    StatusOr<Program> program =
        ParseProgram(bench::kAncestorSource, &symbols);
    ProgramInfo info;
    (void)Validate(*program, &info);
    Database db;
    GenRandomGraph(&symbols, &db, "par", nodes, nodes * 3, 17);
    state.ResumeTiming();
    EvalStats stats;
    (void)NaiveEvaluate(*program, info, &db, &stats);
    benchmark::DoNotOptimize(stats.firings);
  }
}
BENCHMARK(BM_NaiveAncestor)->Arg(50)->Arg(100)->Arg(200)
    ->Unit(benchmark::kMillisecond);

void BM_UniformHash(benchmark::State& state) {
  DiscriminatingFunction fn = DiscriminatingFunction::UniformHash(16);
  Value vals[2] = {1, 2};
  int sink = 0;
  for (auto _ : state) {
    ++vals[0];
    sink += fn.Evaluate(vals, 2);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_UniformHash);

void BM_RewriteLinear(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  bench::AncestorHarness h;
  for (auto _ : state) {
    LinearSchemeOptions options = h.Example3(P);
    StatusOr<RewriteBundle> bundle =
        RewriteLinearSirup(h.program, h.info, h.sirup, P, options);
    benchmark::DoNotOptimize(bundle.ok());
  }
}
BENCHMARK(BM_RewriteLinear)->Arg(4)->Arg(16)->Arg(64);

void BM_ParallelAncestorEndToEnd(benchmark::State& state) {
  const int P = static_cast<int>(state.range(0));
  bench::AncestorHarness h;
  Database base;
  GenRandomGraph(&h.symbols, &base, "par", 100, 300, 23);
  for (auto _ : state) {
    ParallelResult r = h.RunScheme(base, h.Example3(P), P);
    benchmark::DoNotOptimize(r.total_firings);
  }
}
BENCHMARK(BM_ParallelAncestorEndToEnd)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_NetworkGraphDerivation(benchmark::State& state) {
  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(
      "p(U, V, W) :- s(U, V, W).\n"
      "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
      &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(*program, info);
  std::vector<Symbol> v_r = {symbols.Intern("V"), symbols.Intern("W"),
                             symbols.Intern("Z")};
  std::vector<Symbol> v_e = {symbols.Intern("U"), symbols.Intern("V"),
                             symbols.Intern("W")};
  for (auto _ : state) {
    StatusOr<NetworkGraph> graph =
        DeriveNetworkGraph(*sirup, v_r, v_e, {1, -1, 1}, {1, -1, 1});
    benchmark::DoNotOptimize(graph.ok());
  }
}
BENCHMARK(BM_NetworkGraphDerivation);

}  // namespace
}  // namespace pdatalog

BENCHMARK_MAIN();
