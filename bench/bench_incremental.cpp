// EXP-11: incremental view maintenance vs recomputation (an extension
// beyond the paper — monotone Datalog makes the materialized fixpoint
// resumable; this bench quantifies the payoff).
#include <cstdio>

#include "bench_util.h"
#include "eval/incremental.h"

using namespace pdatalog;

int main() {
  std::printf(
      "EXP-11: incremental maintenance of the ancestor closure.\n"
      "For each update-batch size: total work (firings) done by the\n"
      "incremental evaluator across all batches vs. recomputing the\n"
      "closure from scratch after every batch.\n\n");

  TextTable table({"batch size", "batches", "final anc", "incremental",
                   "recompute-each-time", "speedup"});

  for (int batch_size : {1, 10, 50, 250}) {
    SymbolTable symbols;
    StatusOr<Program> program = ParseProgram(bench::kAncestorSource, &symbols);
    ProgramInfo info;
    (void)Validate(*program, &info);

    // The full edge set, fed in batches.
    Database all;
    GenRandomGraph(&symbols, &all, "par", 120, 250, 99);
    const Relation& edges = *all.Find(symbols.Lookup("par"));

    StatusOr<IncrementalEvaluator> inc =
        IncrementalEvaluator::Create(*program, info);
    if (!inc.ok()) {
      std::fprintf(stderr, "%s\n", inc.status().ToString().c_str());
      return 1;
    }

    uint64_t recompute_total = 0;
    int batches = 0;
    for (size_t start = 0; start < edges.size(); start += batch_size) {
      size_t end = std::min(edges.size(), start + batch_size);
      for (size_t r = start; r < end; ++r) {
        (void)*inc->AddFact(symbols.Lookup("par"), edges.row(r));
      }
      (void)*inc->Evaluate();
      ++batches;

      // Cost of recomputing from scratch over the prefix [0, end).
      Database prefix;
      Relation& rel = prefix.GetOrCreate(symbols.Lookup("par"), 2);
      for (size_t r = 0; r < end; ++r) rel.Insert(edges.row(r));
      EvalStats stats;
      (void)SemiNaiveEvaluate(*program, info, &prefix, &stats);
      recompute_total += stats.firings;
    }

    uint64_t incremental_total = inc->stats().firings;
    table.AddRow(
        {TextTable::Cell(batch_size), TextTable::Cell(batches),
         TextTable::Cell(inc->Find(symbols.Lookup("anc"))->size()),
         TextTable::Cell(incremental_total),
         TextTable::Cell(recompute_total),
         TextTable::Cell(static_cast<double>(recompute_total) /
                             static_cast<double>(incremental_total),
                         1)});
  }
  table.Print();

  std::printf(
      "\nreading guide: incremental work is independent of batch size\n"
      "(each derivation fires exactly once, ever); recomputation pays\n"
      "the whole closure repeatedly, so its cost — and the speedup —\n"
      "scales with the number of batches.\n");
  return 0;
}
