// EXP-9 (ablations): measures the design choices DESIGN.md calls out.
//
//   A. Base-relation fragmentation (Section 3's b_k^i) on vs off:
//      same answers, same firings; fragmentation cuts the rows each
//      processor touches, chiefly in scan-driven initialization.
//   B. Greedy (most-bound-first) join ordering vs textual order: same
//      answers; greedy avoids accidental cartesian products.
#include <cstdio>

#include "bench_util.h"

using namespace pdatalog;
using bench::AncestorHarness;

namespace {

void AblateFragmentation() {
  std::printf("--- A: base fragmentation on/off (ancestor, Example 3) ---\n");
  TextTable table({"topology", "N", "fragments", "firings", "rows examined",
                   "replicated rows/proc"});
  for (const char* topology : {"chain", "random", "grid"}) {
    for (bool fragment : {true, false}) {
      const int P = 8;
      AncestorHarness h;
      Database base;
      bench::GenerateTopology(topology, &h.symbols, &base, "par", 7);
      LinearSchemeOptions options = h.Example3(P);
      options.fragment_bases = fragment;
      ParallelResult r = h.RunScheme(base, options, P);
      uint64_t rows = 0;
      for (const WorkerStats& w : r.workers) rows += w.rows_examined;
      uint64_t replicated =
          fragment ? 0 : base.Find(h.par())->size();
      table.AddRow({topology, TextTable::Cell(P), fragment ? "on" : "off",
                    TextTable::Cell(r.total_firings), TextTable::Cell(rows),
                    TextTable::Cell(replicated)});
    }
  }
  table.Print();
  std::printf(
      "expected: identical firings (the h(v(r)) = i constraint already\n"
      "selects the fragment); 'off' examines more rows because the\n"
      "initialization rule scans the full replicated relation on every\n"
      "processor, and must keep a full copy per processor.\n\n");
}

void AblateJoinOrder() {
  std::printf("--- B: greedy vs textual join order ---\n");
  // The textual order hits a cartesian product: after a(X, Y), atom
  // c(W, Z) shares no variable. Greedy reorders b(Y, W) in between.
  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(
      "r(X, Z) :- a(X, Y), c(W, Z), b(Y, W).\n", &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);

  Database db_template;
  GenRandomGraph(&symbols, &db_template, "a", 60, 200, 1);
  GenRandomGraph(&symbols, &db_template, "b", 60, 200, 2);
  GenRandomGraph(&symbols, &db_template, "c", 60, 200, 3);

  TextTable table({"order", "firings", "rows examined", "ms"});
  for (bool greedy : {true, false}) {
    Database db;
    for (const auto& [pred, rel] : db_template.relations()) {
      Relation& copy = db.GetOrCreate(pred, rel->arity());
      for (size_t r = 0; r < rel->size(); ++r) copy.Insert(rel->row(r));
    }
    EvalOptions options;
    options.greedy_join_order = greedy;
    EvalStats stats;
    Stopwatch watch;
    Status status =
        SemiNaiveEvaluate(*program, info, &db, &stats, nullptr, options);
    if (!status.ok()) AncestorHarness::Die("eval", status);
    table.AddRow({greedy ? "greedy" : "textual",
                  TextTable::Cell(stats.firings),
                  TextTable::Cell(stats.rows_examined),
                  TextTable::Cell(watch.ElapsedMillis(), 2)});
  }
  table.Print();
  std::printf(
      "expected: identical firings (same semantics); the textual order\n"
      "pays for the a x c cartesian product in rows examined.\n");
}

void AblateStratification() {
  std::printf("\n--- C: stratified vs monolithic sequential evaluation ---\n");
  // Two stacked transitive closures: while the lower closure is still
  // growing, the monolithic evaluator keeps probing the upper rules.
  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(
      "r1(X, Y) :- e(X, Y).\n"
      "r1(X, Y) :- e(X, Z), r1(Z, Y).\n"
      "r2(X, Y) :- r1(X, Y).\n"
      "r2(X, Y) :- r1(X, Z), r2(Z, Y).\n",
      &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);

  TextTable table({"mode", "firings", "rows examined", "rounds", "ms"});
  for (bool stratified : {false, true}) {
    Database db;
    GenChain(&symbols, &db, "e", 60);
    EvalOptions options;
    options.stratified = stratified;
    EvalStats stats;
    Stopwatch watch;
    Status status =
        SemiNaiveEvaluate(*program, info, &db, &stats, nullptr, options);
    if (!status.ok()) AncestorHarness::Die("eval", status);
    table.AddRow({stratified ? "stratified" : "monolithic",
                  TextTable::Cell(stats.firings),
                  TextTable::Cell(stats.rows_examined),
                  TextTable::Cell(stats.rounds),
                  TextTable::Cell(watch.ElapsedMillis(), 2)});
  }
  table.Print();
  std::printf(
      "expected: identical firings; the stratified run examines fewer\n"
      "rows because upper-stratum delta rules never execute during the\n"
      "lower stratum's rounds.\n");
}

}  // namespace

int main() {
  std::printf("EXP-9: ablations of design choices (not in the paper; they\n"
              "justify this implementation's defaults).\n\n");
  AblateFragmentation();
  AblateJoinOrder();
  AblateStratification();
  return 0;
}
