// EXP-1 / EXP-2 / EXP-3: the three ancestor parallelizations of
// Section 4 across workload topologies and processor counts, measuring
// the communication and storage behaviour the paper states:
//   Example 1: zero cross-processor messages; par replicated.
//   Example 2: every derived tuple broadcast to all processors.
//   Example 3: each tuple to exactly one processor; disjoint fragments.
//   All three: firings == sequential (Theorem 2).
#include <cstdio>

#include "bench_util.h"

using namespace pdatalog;
using bench::AncestorHarness;

int main() {
  std::printf(
      "EXP-1/2/3: Section 4 schemes on the ancestor program.\n"
      "paper: comm(Ex1) = 0 <= comm(Ex3) <= comm(Ex2); Ex2 sends every\n"
      "tuple to all N processors, Ex3 to exactly one; all schemes are\n"
      "semi-naive non-redundant (firings match sequential).\n\n");

  for (const char* topology : {"chain", "tree", "random", "grid"}) {
    for (int P : {2, 4, 8}) {
      AncestorHarness h;
      Database base;
      size_t edges =
          bench::GenerateTopology(topology, &h.symbols, &base, "par", 7);
      EvalStats seq = h.RunSequential(base);

      ParallelResult r1 = h.RunScheme(base, h.Example1(P), P);
      ParallelResult r2 = h.RunScheme(base, h.Example2(base, P), P);
      ParallelResult r3 = h.RunScheme(base, h.Example3(P), P);

      std::printf("topology=%s edges=%zu N=%d  sequential: %llu firings, "
                  "%llu tuples\n",
                  topology, edges, P,
                  static_cast<unsigned long long>(seq.firings),
                  static_cast<unsigned long long>(seq.tuples_inserted));
      TextTable table({"scheme", "firings", "cross-msgs", "self-msgs",
                       "msgs/tuple", "nonredundant"});
      auto add = [&](const char* name, const ParallelResult& r) {
        double per_tuple =
            r.out_tuples_total == 0
                ? 0.0
                : static_cast<double>(r.cross_tuples + r.self_tuples) /
                      static_cast<double>(r.out_tuples_total);
        table.AddRow({name, TextTable::Cell(r.total_firings),
                      TextTable::Cell(r.cross_tuples),
                      TextTable::Cell(r.self_tuples),
                      TextTable::Cell(per_tuple, 2),
                      r.total_firings == seq.firings ? "yes" : "NO"});
      };
      add("example1", r1);
      add("example2", r2);
      add("example3", r3);
      table.Print();
      std::printf("\n");
    }
  }

  std::printf(
      "reading guide: msgs/tuple is 0 or ~0 for example1 (self-routing\n"
      "only, counted under self-msgs), exactly N for example2\n"
      "(broadcast), and exactly 1 for example3 (unique destination).\n");
  return 0;
}
