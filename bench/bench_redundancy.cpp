// EXP-4: Theorem 2 / Theorem 6 measured — parallel firings never exceed
// the sequential semi-naive count, across schemes, topologies, processor
// counts, and hash seeds; and for the constrained (Section 3/7) schemes
// the partition is exact.
#include <cstdio>

#include "bench_util.h"

using namespace pdatalog;
using bench::AncestorHarness;

namespace {

// Non-linear ancestor under the Section 7 scheme.
uint64_t RunNonLinear(int P, uint64_t seed, uint64_t* seq_firings,
                      bool* correct) {
  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(
      "anc(X, Y) :- par(X, Y).\n"
      "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
      &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);

  Database seq_db;
  GenRandomGraph(&symbols, &seq_db, "par", 60, 150, seed);
  EvalStats seq;
  (void)SemiNaiveEvaluate(*program, info, &seq_db, &seq);
  *seq_firings = seq.firings;

  std::vector<GeneralRuleSpec> specs(2);
  specs[0].vars = {symbols.Intern("Y")};
  specs[0].h = DiscriminatingFunction::UniformHash(P, seed);
  specs[1].vars = {symbols.Intern("Z")};
  specs[1].h = DiscriminatingFunction::UniformHash(P, seed);
  StatusOr<RewriteBundle> bundle = RewriteGeneral(*program, info, P, specs);

  Database edb;
  GenRandomGraph(&symbols, &edb, "par", 60, 150, seed);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  *correct =
      result->output.Find(symbols.Lookup("anc"))->ToSortedString(symbols) ==
      seq_db.Find(symbols.Lookup("anc"))->ToSortedString(symbols);
  return result->total_firings;
}

}  // namespace

int main() {
  std::printf(
      "EXP-4: non-redundancy (Theorems 2 and 6).\n"
      "paper: the total number of successful ground substitutions across\n"
      "all processors never exceeds the sequential semi-naive count.\n\n");

  TextTable table({"program", "scheme", "topology", "N", "seed",
                   "seq firings", "par firings", "ratio", "ok"});

  for (const char* topology : {"tree", "random", "grid"}) {
    for (int P : {2, 4, 8}) {
      for (uint64_t seed : {1u, 2u}) {
        AncestorHarness h;
        Database base;
        bench::GenerateTopology(topology, &h.symbols, &base, "par", seed);
        EvalStats seq = h.RunSequential(base);
        struct Variant {
          const char* name;
          LinearSchemeOptions options;
        };
        std::vector<Variant> variants;
        variants.push_back({"Ex1", h.Example1(P, seed)});
        variants.push_back({"Ex2", h.Example2(base, P, seed)});
        variants.push_back({"Ex3", h.Example3(P, seed)});
        for (const Variant& v : variants) {
          ParallelResult r = h.RunScheme(base, v.options, P);
          double ratio = seq.firings == 0
                             ? 1.0
                             : static_cast<double>(r.total_firings) /
                                   static_cast<double>(seq.firings);
          table.AddRow({"linear-anc", v.name, topology, TextTable::Cell(P),
                        TextTable::Cell(static_cast<uint64_t>(seed)),
                        TextTable::Cell(seq.firings),
                        TextTable::Cell(r.total_firings),
                        TextTable::Cell(ratio, 3),
                        r.total_firings <= seq.firings ? "yes" : "NO"});
        }
      }
    }
  }

  for (int P : {2, 4, 8}) {
    for (uint64_t seed : {1u, 2u}) {
      uint64_t seq_firings = 0;
      bool correct = false;
      uint64_t par_firings = RunNonLinear(P, seed, &seq_firings, &correct);
      double ratio = seq_firings == 0 ? 1.0
                                      : static_cast<double>(par_firings) /
                                            static_cast<double>(seq_firings);
      table.AddRow({"nonlinear-anc", "T_i", "random", TextTable::Cell(P),
                    TextTable::Cell(static_cast<uint64_t>(seed)),
                    TextTable::Cell(seq_firings),
                    TextTable::Cell(par_firings), TextTable::Cell(ratio, 3),
                    par_firings <= seq_firings && correct ? "yes" : "NO"});
    }
  }

  table.Print();
  std::printf("\nreading guide: ratio <= 1.000 everywhere; the Section 3\n"
              "scheme partitions the substitution space exactly, so its\n"
              "ratio is 1.000.\n");
  return 0;
}
