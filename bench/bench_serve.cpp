// Serving-mode bench: the resident ServerEngine under a mixed
// read/update workload. N reader threads answer pre-parsed point
// queries against pinned snapshots while one updater streams base-fact
// edges into the maintenance queue; the engine absorbs them in batches
// through the incremental evaluator and republishes.
//
// Two mixes over ancestor on a Zipf-skewed base graph (hot targets, so
// updates keep landing in already-dense closure regions):
//
//   mix_95_5    95% queries / 5% updates — read-mostly cache serving.
//   mix_50_50   50% / 50% — write-heavy maintenance pressure.
//
// A third record, mix_95_5_telemetry, re-runs the read-mostly mix with
// the full telemetry stack live — background sampler, sliding windows,
// slow-query tracing, and an HTTP scraper thread hammering GET /metrics
// — and reports telemetry_overhead_pct: the p99 regression relative to
// the plain mix_95_5 run of the same invocation (same machine, same
// load), the acceptance gate for "monitoring must not tax serving".
//
// Reported per mix: sustained query throughput (qps) and client-side
// latency percentiles serve_p50_ms / serve_p95_ms / serve_p99_ms
// (measured around each Query() call, all reader threads merged), plus
// `consistent`: after the stream drains (Flush), the served snapshot is
// saved and compared against a from-scratch semi-naive evaluation of
// initial + streamed facts — the bit-identical acceptance check. Any
// inconsistency exits 1.
//
// `bench_serve smoke` shrinks the graph and the op counts but keeps
// both mix records so CI can diff against BENCH_serve.baseline.json.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bench_json.h"
#include "bench_util.h"
#include "obs/histogram.h"
#include "server/engine.h"
#include "server/protocol.h"
#include "storage/snapshot.h"

using namespace pdatalog;

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Renders the generated base graph as program text so the engine's
// Create() path (which owns its symbol table) seeds the same facts.
std::string RenderFacts(const Database& db, const SymbolTable& symbols,
                        const char* predicate) {
  const Relation* rel = db.Find(symbols.Lookup(predicate));
  std::string out;
  if (rel == nullptr) return out;
  for (size_t r = 0; r < rel->size(); ++r) {
    out += predicate;
    out += '(';
    out += symbols.Name(rel->row(r)[0]);
    out += ", ";
    out += symbols.Name(rel->row(r)[1]);
    out += ").\n";
  }
  return out;
}

// Random non-self-loop edges in the same n<i> node namespace as the
// generators, rendered as "+fact."-style ground atoms (sans '+').
std::vector<std::string> MakeUpdateStream(int num_nodes, size_t count,
                                          uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<std::string> facts;
  facts.reserve(count);
  while (facts.size() < count) {
    int a = static_cast<int>(rng() % static_cast<uint64_t>(num_nodes));
    int b = static_cast<int>(rng() % static_cast<uint64_t>(num_nodes));
    if (a == b) continue;
    facts.push_back("par(n" + std::to_string(a) + ", n" +
                    std::to_string(b) + ").");
  }
  return facts;
}

bool SameRelation(const Database& a, const SymbolTable& sa,
                  const Database& b, const SymbolTable& sb,
                  const char* pred) {
  const Relation* ra = a.Find(sa.Lookup(pred));
  const Relation* rb = b.Find(sb.Lookup(pred));
  if (ra == nullptr || rb == nullptr) {
    return (ra == nullptr || ra->size() == 0) &&
           (rb == nullptr || rb->size() == 0);
  }
  return ra->ToSortedString(sa) == rb->ToSortedString(sb);
}

// Saved snapshot (what clients were served) vs a from-scratch batch
// evaluation over initial + streamed facts: both must agree exactly.
bool CheckConsistency(ServerEngine* engine, const std::string& base_source,
                      const std::vector<std::string>& updates,
                      const std::string& id) {
  std::string dir = "/tmp/pdatalog_bench_serve_" + id;
  StatusOr<size_t> saved = engine->SaveSnapshot(dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s: snapshot save failed: %s\n", id.c_str(),
                 saved.status().ToString().c_str());
    return false;
  }
  SymbolTable served_symbols;
  Database served;
  StatusOr<size_t> loaded = LoadDatabase(dir, &served_symbols, &served);
  (void)!std::system(("rm -rf " + dir).c_str());
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s: snapshot load failed: %s\n", id.c_str(),
                 loaded.status().ToString().c_str());
    return false;
  }

  std::string full_source = base_source;
  for (const std::string& fact : updates) full_source += fact + "\n";
  SymbolTable ref_symbols;
  StatusOr<Program> program = ParseProgram(full_source, &ref_symbols);
  if (!program.ok()) bench::AncestorHarness::Die("parse", program.status());
  ProgramInfo info;
  Status status = Validate(*program, &info);
  if (!status.ok()) bench::AncestorHarness::Die("validate", status);
  Database ref;
  status = ref.LoadFacts(*program);
  if (!status.ok()) bench::AncestorHarness::Die("load", status);
  EvalStats stats;
  status = SemiNaiveEvaluate(*program, info, &ref, &stats);
  if (!status.ok()) bench::AncestorHarness::Die("seminaive", status);

  bool ok = SameRelation(served, served_symbols, ref, ref_symbols, "par") &&
            SameRelation(served, served_symbols, ref, ref_symbols, "anc");
  if (!ok) {
    std::fprintf(stderr,
                 "%s: served snapshot diverges from batch evaluation\n",
                 id.c_str());
  }
  return ok;
}

// One GET against the loopback telemetry endpoint; returns the raw
// response ("" on any failure — the scraper is load, not a check).
std::string HttpGet(int port, const char* path) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  std::string request = std::string("GET ") + path + " HTTP/1.0\r\n\r\n";
  if (::write(fd, request.data(), request.size()) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return "";
  }
  std::string response;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0) {
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

struct MixResult {
  double wall_ms = 0;
  double qps = 0;
  double p50_ms = 0, p95_ms = 0, p99_ms = 0;
  uint64_t queries = 0;
  size_t updates = 0;
  uint64_t scrapes = 0;
  bool consistent = false;
};

MixResult RunMix(const std::string& id, const std::string& base_source,
                 int num_nodes, int readers, uint64_t queries_per_reader,
                 size_t num_updates, uint64_t seed,
                 const ServerOptions& sopts = {}, bool scrape = false) {
  StatusOr<std::unique_ptr<ServerEngine>> created =
      ServerEngine::Create(base_source, sopts);
  if (!created.ok()) bench::AncestorHarness::Die("serve", created.status());
  ServerEngine* engine = created->get();

  TelemetryHttpServer http(engine);
  if (scrape && !http.Start(0).ok()) {
    bench::AncestorHarness::Die(
        "telemetry", Status::Internal("telemetry endpoint failed to bind"));
  }

  std::vector<std::string> updates =
      MakeUpdateStream(num_nodes, num_updates, seed);

  // Pre-parsed query pool: anc(n<k>, X) over random sources. Readers
  // stride through it so the timed loop is Query() alone — the steady
  // state of a client that prepares statements once.
  std::vector<ParsedQuery> pool;
  std::mt19937_64 qrng(seed ^ 0x9e3779b97f4a7c15ull);
  for (int i = 0; i < 128; ++i) {
    std::string text =
        "anc(n" +
        std::to_string(qrng() % static_cast<uint64_t>(num_nodes)) + ", X)";
    StatusOr<ParsedQuery> parsed = engine->Parse(text);
    if (!parsed.ok()) bench::AncestorHarness::Die("query", parsed.status());
    pool.push_back(std::move(*parsed));
  }

  const uint64_t total_queries =
      queries_per_reader * static_cast<uint64_t>(readers);
  std::atomic<uint64_t> queries_done{0};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<bool> stop_scraper{false};
  std::vector<Histogram> lat(static_cast<size_t>(readers));

  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(readers) + 2);
  if (scrape) {
    // A Prometheus-style poller: scrape /metrics (and /health) through
    // the real HTTP endpoint for the whole run, so the measured
    // overhead includes sampling, merging, and rendering.
    threads.emplace_back([&] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        if (!HttpGet(http.port(), "/metrics").empty()) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        (void)HttpGet(http.port(), "/health");
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }
  for (int t = 0; t < readers; ++t) {
    threads.emplace_back([&, t] {
      Histogram& h = lat[static_cast<size_t>(t)];
      size_t at = static_cast<size_t>(t) * 37 % pool.size();
      for (uint64_t q = 0; q < queries_per_reader; ++q) {
        uint64_t begin = NowNs();
        StatusOr<QueryResult> result = engine->Query(pool[at]);
        h.Record(NowNs() - begin);
        if (!result.ok()) {
          bench::AncestorHarness::Die("query", result.status());
        }
        at = (at + 1) % pool.size();
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // The updater paces itself against reader progress so the submitted
  // fraction tracks the queried fraction — the mix ratio holds across
  // the whole run instead of front-loading every update.
  threads.emplace_back([&] {
    size_t submitted = 0;
    while (submitted < updates.size()) {
      uint64_t done = queries_done.load(std::memory_order_relaxed);
      size_t target = static_cast<size_t>(
          static_cast<double>(updates.size()) *
          static_cast<double>(done) / static_cast<double>(total_queries));
      if (target > updates.size()) target = updates.size();
      if (submitted >= target && done < total_queries) {
        std::this_thread::yield();
        continue;
      }
      if (target == submitted) target = submitted + 1;
      for (; submitted < target; ++submitted) {
        Status status = engine->SubmitFactText(updates[submitted]);
        if (!status.ok()) bench::AncestorHarness::Die("submit", status);
      }
    }
  });
  // The scraper is stopped separately (it never exits on its own).
  for (size_t t = scrape ? 1 : 0; t < threads.size(); ++t) {
    threads[t].join();
  }
  double wall = watch.ElapsedSeconds();
  stop_scraper.store(true, std::memory_order_relaxed);
  if (scrape) threads[0].join();
  engine->Flush();
  http.Stop();

  Histogram merged;
  for (const Histogram& h : lat) merged.Merge(h);

  MixResult r;
  r.wall_ms = wall * 1e3;
  r.queries = total_queries;
  r.updates = updates.size();
  r.scrapes = scrapes.load(std::memory_order_relaxed);
  r.qps = wall == 0 ? 0.0 : static_cast<double>(total_queries) / wall;
  r.p50_ms = merged.Percentile(50) / 1e6;
  r.p95_ms = merged.Percentile(95) / 1e6;
  r.p99_ms = merged.Percentile(99) / 1e6;
  r.consistent = CheckConsistency(engine, base_source, updates, id);
  (*created)->Shutdown();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "smoke") == 0;
  const int num_nodes = smoke ? 60 : 200;
  const int num_edges = smoke ? 150 : 600;
  const int readers = smoke ? 2 : 4;
  const uint64_t queries_per_reader = smoke ? 600 : 8000;

  // Zipf-skewed base graph: hot target nodes, dense closure regions.
  SymbolTable gen_symbols;
  Database gen_db;
  size_t base_edges = GenZipfGraph(&gen_symbols, &gen_db, "par", num_nodes,
                                   num_edges, 1.0, 0x5eed);
  std::string base_source =
      std::string(bench::kAncestorSource) +
      RenderFacts(gen_db, gen_symbols, "par");

  bench::BenchJson json("serve");
  std::printf(
      "serving engine: %d reader thread(s) + 1 updater over ancestor on a\n"
      "Zipf graph (%d nodes, %zu base edges). Queries answer against\n"
      "pinned snapshots; updates stream through the incremental\n"
      "maintenance thread in batches.\n\n",
      readers, num_nodes, base_edges);

  const uint64_t total_queries =
      queries_per_reader * static_cast<uint64_t>(readers);
  struct Mix {
    const char* id;
    size_t updates;
  };
  const Mix mixes[] = {
      // 95/5 and 50/50 read/update ratios over total operations.
      {"mix_95_5", static_cast<size_t>(total_queries / 19)},
      {"mix_50_50", static_cast<size_t>(total_queries)},
  };

  // Plain mixes run with telemetry fully off (no sampler thread) so
  // the telemetry re-run below measures the whole stack's cost.
  ServerOptions plain_opts;
  plain_opts.sample_interval_ms = 0;

  TextTable table({"mix", "queries", "updates", "qps", "p50 ms", "p95 ms",
                   "p99 ms", "consistent"});
  bool all_consistent = true;
  double plain_95_5_p99 = 0;
  for (const Mix& mix : mixes) {
    MixResult r = RunMix(mix.id, base_source, num_nodes, readers,
                         queries_per_reader, mix.updates, 0xfeed,
                         plain_opts);
    all_consistent = all_consistent && r.consistent;
    if (std::strcmp(mix.id, "mix_95_5") == 0) plain_95_5_p99 = r.p99_ms;
    table.AddRow({TextTable::Cell(mix.id), TextTable::Cell(r.queries),
                  TextTable::Cell(static_cast<uint64_t>(r.updates)),
                  TextTable::Cell(r.qps, 0), TextTable::Cell(r.p50_ms, 4),
                  TextTable::Cell(r.p95_ms, 4), TextTable::Cell(r.p99_ms, 4),
                  TextTable::Cell(r.consistent ? "yes" : "NO")});
    json.NewRecord()
        .Set("id", std::string(mix.id))
        .Set("readers", readers)
        .Set("queries", r.queries)
        .Set("updates", static_cast<uint64_t>(r.updates))
        .Set("base_edges", static_cast<uint64_t>(base_edges))
        .Set("qps", r.qps)
        .Set("serve_p50_ms", r.p50_ms)
        .Set("serve_p95_ms", r.p95_ms)
        .Set("serve_p99_ms", r.p99_ms)
        .Set("consistent", r.consistent);
  }

  // The read-mostly mix again with the monitoring stack live: sampler
  // + windows, slow-query tracing, and a 20 ms HTTP scrape loop.
  ServerOptions telemetry_opts;
  telemetry_opts.sample_interval_ms = 200;
  telemetry_opts.slow_query_ms = 50;
  {
    MixResult r = RunMix("mix_95_5_telemetry", base_source, num_nodes,
                         readers, queries_per_reader,
                         static_cast<size_t>(total_queries / 19), 0xfeed,
                         telemetry_opts, /*scrape=*/true);
    all_consistent = all_consistent && r.consistent;
    const double overhead_pct =
        plain_95_5_p99 <= 0 ? 0.0
                            : (r.p99_ms / plain_95_5_p99 - 1.0) * 100.0;
    table.AddRow({TextTable::Cell("mix_95_5_telemetry"),
                  TextTable::Cell(r.queries),
                  TextTable::Cell(static_cast<uint64_t>(r.updates)),
                  TextTable::Cell(r.qps, 0), TextTable::Cell(r.p50_ms, 4),
                  TextTable::Cell(r.p95_ms, 4), TextTable::Cell(r.p99_ms, 4),
                  TextTable::Cell(r.consistent ? "yes" : "NO")});
    std::printf("telemetry run: %llu /metrics scrapes, p99 overhead %+.1f%%\n",
                static_cast<unsigned long long>(r.scrapes), overhead_pct);
    json.NewRecord()
        .Set("id", std::string("mix_95_5_telemetry"))
        .Set("readers", readers)
        .Set("queries", r.queries)
        .Set("updates", static_cast<uint64_t>(r.updates))
        .Set("base_edges", static_cast<uint64_t>(base_edges))
        .Set("scrapes", r.scrapes)
        .Set("qps", r.qps)
        .Set("serve_p50_ms", r.p50_ms)
        .Set("serve_p95_ms", r.p95_ms)
        .Set("serve_p99_ms", r.p99_ms)
        .Set("telemetry_overhead_pct", overhead_pct)
        .Set("consistent", r.consistent);
  }
  table.Print();
  std::printf(
      "\nreading guide: qps is sustained reader throughput while the\n"
      "update stream is live; serve_p99_ms is the client-observed tail.\n"
      "`consistent` compares the final served snapshot against a\n"
      "from-scratch batch evaluation of initial + streamed facts.\n"
      "telemetry_overhead_pct is mix_95_5_telemetry's p99 regression\n"
      "against the plain mix_95_5 run of this same invocation.\n");
  json.WriteFile();
  if (!all_consistent) {
    std::fprintf(stderr, "bench_serve: consistency check FAILED\n");
    return 1;
  }
  return 0;
}
