#include "bench_json.h"

#include <cinttypes>
#include <cstdio>

namespace pdatalog {
namespace bench {
namespace {

std::string Quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  out += '"';
  return out;
}

}  // namespace

JsonRecord& JsonRecord::Set(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, Quote(value));
  return *this;
}
JsonRecord& JsonRecord::Set(const std::string& key, const char* value) {
  return Set(key, std::string(value));
}
JsonRecord& JsonRecord::Set(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  fields_.emplace_back(key, buf);
  return *this;
}
JsonRecord& JsonRecord::Set(const std::string& key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  fields_.emplace_back(key, buf);
  return *this;
}
JsonRecord& JsonRecord::Set(const std::string& key, int value) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%d", value);
  fields_.emplace_back(key, buf);
  return *this;
}
JsonRecord& JsonRecord::Set(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  return *this;
}

std::string JsonRecord::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += Quote(fields_[i].first);
    out += ": ";
    out += fields_[i].second;
  }
  out += "}";
  return out;
}

JsonRecord& BenchJson::NewRecord() {
  records_.emplace_back();
  return records_.back();
}

std::string BenchJson::ToString() const {
  std::string out = "{\n  \"bench\": " + Quote(name_) + ",\n  \"records\": [";
  for (size_t i = 0; i < records_.size(); ++i) {
    out += i > 0 ? ",\n    " : "\n    ";
    out += records_[i].ToString();
  }
  out += "\n  ]\n}\n";
  return out;
}

bool BenchJson::WriteFile(const std::string& dir) const {
  std::string path = dir + "/BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    return false;
  }
  std::string body = ToString();
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  if (ok) std::printf("wrote %s\n", path.c_str());
  return ok;
}

}  // namespace bench
}  // namespace pdatalog
