// EXP-5: the Section 6 redundancy/communication trade-off, swept.
//
// The R_i scheme lets each processor keep a fraction rho of its outputs
// for self-processing (h_i keep-or-hash). rho = 0 is the non-redundant
// Section 3 scheme; rho = 1 is the no-communication scheme of [18].
// The paper: "more communication would lead to lesser redundancy, and
// vice-versa" — executions are "points along a spectrum whose extremes
// are characterized by non-redundancy and no communication."
#include <cstdio>

#include "bench_util.h"

using namespace pdatalog;
using bench::AncestorHarness;

int main() {
  std::printf(
      "EXP-5: Section 6 trade-off spectrum (ancestor, keep-fraction "
      "rho).\n"
      "paper: communication falls and redundancy rises as rho goes from\n"
      "0 (Section 3 scheme) to 1 (scheme of [18]).\n\n");

  for (const char* topology : {"random", "tree"}) {
    for (int P : {4, 8}) {
      AncestorHarness h;
      Database base;
      size_t edges =
          bench::GenerateTopology(topology, &h.symbols, &base, "par", 3);
      EvalStats seq = h.RunSequential(base);
      std::printf("topology=%s edges=%zu N=%d  sequential firings: %llu\n",
                  topology, edges, P,
                  static_cast<unsigned long long>(seq.firings));

      TextTable table({"rho", "firings", "redundancy", "cross-msgs",
                       "makespan(c=1,n=4)"});
      for (double rho : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        TradeoffOptions options;
        options.v_r = {h.Var("Z")};
        options.v_e = {h.Var("X")};
        options.h_prime = DiscriminatingFunction::UniformHash(P);
        for (int i = 0; i < P; ++i) {
          options.h_i.push_back(
              DiscriminatingFunction::KeepOrHash(i, rho, P));
        }
        StatusOr<RewriteBundle> bundle =
            RewriteTradeoff(h.program, h.info, h.sirup, P, options);
        if (!bundle.ok()) AncestorHarness::Die("rewrite", bundle.status());
        Database edb = h.CloneEdb(base);
        StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
        if (!result.ok()) AncestorHarness::Die("run", result.status());

        double redundancy =
            seq.firings == 0
                ? 1.0
                : static_cast<double>(result->total_firings) /
                      static_cast<double>(seq.firings);
        table.AddRow({TextTable::Cell(rho, 2),
                      TextTable::Cell(result->total_firings),
                      TextTable::Cell(redundancy, 3),
                      TextTable::Cell(result->cross_tuples),
                      TextTable::Cell(result->ModeledMakespan(1.0, 4.0), 0)});
      }
      table.Print();
      std::printf("\n");
    }
  }

  std::printf(
      "reading guide: cross-msgs decreases monotonically to 0 at rho=1;\n"
      "redundancy is 1.000 at rho=0 and grows with rho whenever tuples\n"
      "have multiple derivation sites. The modeled makespan (cpu=1,\n"
      "net=4 per message) typically has an interior optimum: some\n"
      "redundancy is worth buying when communication is expensive —\n"
      "the architectural point of Section 8.\n");
  return 0;
}
