// Hot-path before/after: the seed's evaluation substrate (node-based
// hash index keyed by materialized `Tuple`s, std::function join sink
// with a fresh binding vector per call, unordered_set tuple dedup,
// per-tuple sending-rule scan with std::find destination dedup) is
// reproduced here verbatim as the "legacy" implementation and raced
// against the production flat path on identical plans and data.
//
// The host is single-core, so the comparison is pure substrate
// throughput: same semi-naive schedule, same join orders, same
// fixpoints (asserted), different storage/dispatch machinery.
// Emits BENCH_hotpath.json; exits nonzero if any fixpoint diverges.
#include <algorithm>
#include <cstdio>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "bench_json.h"
#include "bench_util.h"
#include "core/routing.h"

namespace pdatalog {
namespace {

// ---------------------------------------------------------------------
// Legacy substrate (the seed implementation, frozen for comparison).

class LegacyColumnIndex {
 public:
  LegacyColumnIndex(uint32_t mask, int arity) : mask_(mask) {
    for (int c = 0; c < arity; ++c) {
      if (mask & (1u << c)) key_columns_.push_back(c);
    }
  }

  Tuple MakeKey(const Tuple& row) const {
    Value buf[32];
    int n = 0;
    for (int c : key_columns_) buf[n++] = row[c];
    return Tuple(buf, n);
  }

  void Add(const Tuple& row, uint32_t row_id) {
    map_[MakeKey(row)].push_back(row_id);
  }

  const std::vector<uint32_t>* Lookup(const Tuple& key) const {
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : &it->second;
  }

  size_t built_upto = 0;

 private:
  uint32_t mask_;
  std::vector<int> key_columns_;
  std::unordered_map<Tuple, std::vector<uint32_t>, TupleHash> map_;
};

class LegacyRelation {
 public:
  explicit LegacyRelation(int arity) : arity_(arity) {}

  bool Insert(const Tuple& t) {
    if (!dedup_.insert(t).second) return false;
    rows_.push_back(t);
    return true;
  }

  size_t size() const { return rows_.size(); }
  const Tuple& row(size_t i) const { return rows_[i]; }

  const LegacyColumnIndex& EnsureIndex(uint32_t mask) {
    auto [it, inserted] = indexes_.try_emplace(mask, mask, arity_);
    LegacyColumnIndex& index = it->second;
    for (size_t r = index.built_upto; r < rows_.size(); ++r) {
      index.Add(rows_[r], static_cast<uint32_t>(r));
    }
    index.built_upto = rows_.size();
    return index;
  }

  const LegacyColumnIndex* GetIndex(uint32_t mask) const {
    auto it = indexes_.find(mask);
    return it == indexes_.end() ? nullptr : &it->second;
  }

 private:
  int arity_;
  std::vector<Tuple> rows_;
  std::unordered_set<Tuple, TupleHash> dedup_;
  std::unordered_map<uint32_t, LegacyColumnIndex> indexes_;
};

struct LegacyInput {
  const LegacyRelation* relation = nullptr;
  size_t begin = 0;
  size_t end = 0;
};

// The seed's recursive join runner: type-erased sink, binding vector
// allocated per Execute, key Tuple materialized per probe, row ranges
// filtered with lower_bound on the per-key id vector.
class LegacyRunner {
 public:
  LegacyRunner(const CompiledRule& compiled,
               const std::vector<LegacyInput>& inputs,
               const std::function<void(const Tuple&)>& sink)
      : compiled_(compiled),
        inputs_(inputs),
        sink_(sink),
        bindings_(compiled.num_vars()) {}

  void Run() { Step(0); }

 private:
  void Step(size_t step_no) {
    if (step_no == compiled_.steps().size()) {
      Fire();
      return;
    }
    const PlanStep& step = compiled_.steps()[step_no];
    const LegacyInput& input = inputs_[step.body_index];

    if (step.index_mask != 0) {
      Value key_buf[32];
      int kn = 0;
      for (size_t c = 0; c < step.positions.size(); ++c) {
        if (!(step.index_mask & (1u << c))) continue;
        const PlanPos& pos = step.positions[c];
        key_buf[kn++] = pos.kind == PlanPos::Kind::kConst
                            ? pos.value
                            : bindings_[pos.var];
      }
      const LegacyColumnIndex* index = input.relation->GetIndex(step.index_mask);
      const std::vector<uint32_t>* ids = index->Lookup(Tuple(key_buf, kn));
      if (ids != nullptr) {
        auto it = std::lower_bound(ids->begin(), ids->end(),
                                   static_cast<uint32_t>(input.begin));
        for (; it != ids->end() && *it < input.end; ++it) {
          TryRow(step_no, step, input.relation->row(*it));
        }
      }
    } else {
      for (size_t i = input.begin; i < input.end; ++i) {
        TryRow(step_no, step, input.relation->row(i));
      }
    }
  }

  void TryRow(size_t step_no, const PlanStep& step, const Tuple& row) {
    for (size_t c = 0; c < step.positions.size(); ++c) {
      const PlanPos& pos = step.positions[c];
      switch (pos.kind) {
        case PlanPos::Kind::kConst:
          if (!(step.index_mask & (1u << c)) && row[c] != pos.value) return;
          break;
        case PlanPos::Kind::kBound:
          if (!(step.index_mask & (1u << c)) && row[c] != bindings_[pos.var])
            return;
          break;
        case PlanPos::Kind::kFree:
          bindings_[static_cast<size_t>(pos.var)] = row[c];
          break;
      }
    }
    Step(step_no + 1);
  }

  void Fire() {
    const auto& recipe = compiled_.head_recipe();
    Value buf[32];
    for (size_t c = 0; c < recipe.size(); ++c) {
      buf[c] = recipe[c].kind == PlanPos::Kind::kConst
                   ? recipe[c].value
                   : bindings_[recipe[c].var];
    }
    sink_(Tuple(buf, static_cast<int>(recipe.size())));
  }

  const CompiledRule& compiled_;
  const std::vector<LegacyInput>& inputs_;
  const std::function<void(const Tuple&)>& sink_;
  std::vector<Value> bindings_;
};

void LegacyExecute(const CompiledRule& compiled,
                   const std::vector<LegacyInput>& inputs,
                   const std::function<void(const Tuple&)>& sink) {
  LegacyRunner runner(compiled, inputs, sink);
  runner.Run();
}

// The seed's SendTuple body: re-match the pattern against each spec
// per tuple, std::find-deduplicate the destination list.
int LegacyRoute(const std::vector<SendSpec>& specs,
                const DiscriminatingRegistry& registry, int num_processors,
                const Tuple& tuple, std::vector<int>* dests) {
  int broadcasts = 0;
  for (const SendSpec& spec : specs) {
    bool match = true;
    const Atom& pat = spec.pattern;
    for (int c = 0; c < pat.arity() && match; ++c) {
      const Term& term = pat.args[c];
      if (term.is_const()) {
        if (tuple[c] != term.sym) match = false;
        continue;
      }
      for (int c2 = 0; c2 < c; ++c2) {
        if (pat.args[c2].is_var() && pat.args[c2].sym == term.sym &&
            tuple[c] != tuple[c2]) {
          match = false;
          break;
        }
      }
    }
    if (!match) continue;
    if (spec.determined) {
      Value vals[32];
      for (size_t k = 0; k < spec.var_positions.size(); ++k) {
        vals[k] = tuple[spec.var_positions[k]];
      }
      int dest = registry.Evaluate(spec.function, vals,
                                   static_cast<int>(spec.var_positions.size()));
      if (std::find(dests->begin(), dests->end(), dest) == dests->end()) {
        dests->push_back(dest);
      }
    } else {
      ++broadcasts;
      for (int j = 0; j < num_processors; ++j) {
        if (std::find(dests->begin(), dests->end(), j) == dests->end()) {
          dests->push_back(j);
        }
      }
    }
  }
  return broadcasts;
}

// ---------------------------------------------------------------------
// Workloads: one linear sirup evaluated to fixpoint on both substrates
// with the identical semi-naive schedule.

struct SirupWorkload {
  std::string name;
  CompiledRule init;    // head :- base (copies the base relation)
  CompiledRule delta;   // recursive rule, delta atom joined first
  int recursive_body_index = 1;  // position of the recursive atom
  std::vector<Tuple> base_rows;
  int base_arity = 2;
  int head_arity = 2;
};

struct RunResult {
  size_t fixpoint_size = 0;
  int rounds = 0;
  double seconds = 0;
  uint64_t batch_probes = 0;  // batch-kernel invocations (flat runs only)
};

RunResult RunLegacy(const SirupWorkload& w) {
  Stopwatch timer;
  LegacyRelation base(w.base_arity), head(w.head_arity);
  for (const Tuple& t : w.base_rows) base.Insert(t);

  LegacyInput base_full{&base, 0, base.size()};
  LegacyExecute(w.init, {base_full}, [&](const Tuple& t) { head.Insert(t); });

  for (const auto& [pred, mask] : w.delta.required_indexes()) {
    (void)pred;
    base.EnsureIndex(mask);
  }

  RunResult r;
  size_t old_end = 0;
  while (old_end < head.size()) {
    size_t frontier = head.size();
    std::vector<LegacyInput> inputs(2);
    inputs[1 - w.recursive_body_index] = base_full;
    inputs[w.recursive_body_index] = LegacyInput{&head, old_end, frontier};
    LegacyExecute(w.delta, inputs, [&](const Tuple& t) { head.Insert(t); });
    old_end = frontier;
    ++r.rounds;
  }
  r.fixpoint_size = head.size();
  r.seconds = timer.ElapsedSeconds();
  return r;
}

RunResult RunFlat(const SirupWorkload& w) {
  Stopwatch timer;
  Relation base(w.base_arity), head(w.head_arity);
  for (const Tuple& t : w.base_rows) base.Insert(t);

  JoinScratch scratch;
  ExecStats stats;
  BatchInserter inserter(&head);
  auto sink = [&inserter](const Value* values, int n) {
    inserter.Push(values, n);
  };
  std::vector<AtomInput> init_inputs = {{&base, 0, base.size()}};
  JoinExecutor::Execute(w.init, init_inputs, nullptr, sink, &stats, &scratch);
  inserter.Flush();

  for (const auto& [pred, mask] : w.delta.required_indexes()) {
    (void)pred;
    base.EnsureIndex(mask);
  }

  RunResult r;
  size_t old_end = 0;
  while (old_end < head.size()) {
    size_t frontier = head.size();
    std::vector<AtomInput> inputs(2);
    inputs[1 - w.recursive_body_index] = AtomInput{&base, 0, base.size()};
    inputs[w.recursive_body_index] = AtomInput{&head, old_end, frontier};
    JoinExecutor::Execute(w.delta, inputs, nullptr, sink, &stats, &scratch);
    inserter.Flush();
    old_end = frontier;
    ++r.rounds;
  }
  r.fixpoint_size = head.size();
  r.batch_probes = stats.batch_probes;
  r.seconds = timer.ElapsedSeconds();
  return r;
}

CompiledRule CompileOrDie(const Program& program, int rule_index,
                          int preferred_first) {
  StatusOr<CompiledRule> compiled =
      CompiledRule::Compile(program.rules[rule_index], preferred_first);
  if (!compiled.ok()) bench::AncestorHarness::Die("compile", compiled.status());
  return std::move(*compiled);
}

// anc(X, Y) :- par(X, Y).  anc(X, Y) :- par(X, Z), anc(Z, Y).
SirupWorkload AncestorWorkload(SymbolTable* symbols) {
  StatusOr<Program> program =
      ParseProgram(bench::kAncestorSource, symbols);
  if (!program.ok()) bench::AncestorHarness::Die("parse", program.status());

  Database db;
  GenRandomGraph(symbols, &db, "par", 600, 1500, /*seed=*/17);
  GenChain(symbols, &db, "par", 400);
  const Relation* par = db.Find(symbols->Intern("par"));

  SirupWorkload w;
  w.name = "ancestor";
  w.init = CompileOrDie(*program, 0, -1);
  // Delta on the recursive atom (body index 1), matching the
  // semi-naive evaluator's variant.
  w.delta = CompileOrDie(*program, 1, /*preferred_first=*/1);
  w.recursive_body_index = 1;
  for (size_t r = 0; r < par->size(); ++r) w.base_rows.push_back(par->row(r));
  return w;
}

}  // namespace
}  // namespace pdatalog

int main() {
  using namespace pdatalog;

  std::printf(
      "hot-path substrate comparison: seed (node-hash indexes, erased\n"
      "sinks, tuple-set dedup, per-tuple send scans) vs flat (open\n"
      "addressing, template sinks, view dedup, precompiled routes).\n\n");

  bench::BenchJson json("hotpath");
  bool all_match = true;
  double min_speedup = 1e9;
  uint64_t total_batch_probes = 0;

  SymbolTable symbols;
  std::vector<SirupWorkload> workloads;
  workloads.push_back(AncestorWorkload(&symbols));

  // Points-to: pt(V, O) :- new(V, O).  pt(V, O) :- assign(V, W), pt(W, O).
  // Two base relations, so it runs through its own driver: new() seeds
  // the head directly and the recursive rule joins against assign().
  {
    SymbolTable pt_symbols;
    StatusOr<Program> program = ParseProgram(
        "pt(V, O) :- new(V, O).\n"
        "pt(V, O) :- assign(V, W), pt(W, O).\n",
        &pt_symbols);
    if (!program.ok()) bench::AncestorHarness::Die("parse", program.status());

    Database db;
    // Assignment graph: scale-free-ish hubs to stress skewed keys.
    GenRandomGraph(&pt_symbols, &db, "assign", 2500, 7000, /*seed=*/23);
    GenTree(&pt_symbols, &db, "assign", 2, 10);
    const Relation* assign = db.Find(pt_symbols.Intern("assign"));

    SirupWorkload w;
    w.name = "points_to";
    w.init = CompileOrDie(*program, 0, -1);
    w.delta = CompileOrDie(*program, 1, /*preferred_first=*/1);
    w.recursive_body_index = 1;
    // new(V, O): every 7th program variable allocates one object (the
    // variable ids are the generators' interned node symbols).
    std::vector<Value> vars;
    {
      std::unordered_set<Value> seen;
      for (size_t i = 0; i < assign->size(); ++i) {
        for (Value v : assign->row(i)) {
          if (seen.insert(v).second) vars.push_back(v);
        }
      }
      std::sort(vars.begin(), vars.end());
    }
    std::vector<Tuple> news;
    for (size_t i = 0; i < vars.size(); i += 7) {
      news.push_back(Tuple{vars[i], static_cast<Value>(1000000 + i)});
    }
    auto run_pair = [&](bool flat) {
      Stopwatch timer;
      RunResult r;
      if (flat) {
        Relation assign_rel(2), pt(2);
        for (size_t i = 0; i < assign->size(); ++i)
          assign_rel.Insert(assign->row(i));
        JoinScratch scratch;
        ExecStats stats;
        BatchInserter inserter(&pt);
        auto sink = [&inserter](const Value* values, int n) {
          inserter.Push(values, n);
        };
        for (const Tuple& t : news) pt.Insert(t);
        for (const auto& [pred, mask] : w.delta.required_indexes()) {
          (void)pred;
          assign_rel.EnsureIndex(mask);
        }
        size_t old_end = 0;
        while (old_end < pt.size()) {
          size_t frontier = pt.size();
          std::vector<AtomInput> inputs = {
              {&assign_rel, 0, assign_rel.size()}, {&pt, old_end, frontier}};
          JoinExecutor::Execute(w.delta, inputs, nullptr, sink, &stats,
                                &scratch);
          inserter.Flush();
          old_end = frontier;
          ++r.rounds;
        }
        r.fixpoint_size = pt.size();
        r.batch_probes = stats.batch_probes;
      } else {
        LegacyRelation assign_rel(2), pt(2);
        for (size_t i = 0; i < assign->size(); ++i)
          assign_rel.Insert(assign->row(i));
        for (const Tuple& t : news) pt.Insert(t);
        for (const auto& [pred, mask] : w.delta.required_indexes()) {
          (void)pred;
          assign_rel.EnsureIndex(mask);
        }
        size_t old_end = 0;
        while (old_end < pt.size()) {
          size_t frontier = pt.size();
          std::vector<LegacyInput> inputs = {
              {&assign_rel, 0, assign_rel.size()}, {&pt, old_end, frontier}};
          LegacyExecute(w.delta, inputs,
                        [&](const Tuple& t) { pt.Insert(t); });
          old_end = frontier;
          ++r.rounds;
        }
        r.fixpoint_size = pt.size();
      }
      r.seconds = timer.ElapsedSeconds();
      return r;
    };

    constexpr int kReps = 3;
    RunResult legacy, flat;
    for (int rep = 0; rep < kReps; ++rep) {
      RunResult l = run_pair(false), f = run_pair(true);
      if (rep == 0 || l.seconds < legacy.seconds) legacy = l;
      if (rep == 0 || f.seconds < flat.seconds) flat = f;
    }
    bool match = legacy.fixpoint_size == flat.fixpoint_size &&
                 legacy.rounds == flat.rounds;
    all_match = all_match && match;
    double speedup = flat.seconds > 0 ? legacy.seconds / flat.seconds : 0;
    min_speedup = std::min(min_speedup, speedup);
    total_batch_probes += flat.batch_probes;
    std::printf(
        "points_to: fixpoint=%zu rounds=%d  legacy %.3fs  flat %.3fs  "
        "speedup %.2fx  fixpoints %s\n",
        flat.fixpoint_size, flat.rounds, legacy.seconds, flat.seconds,
        speedup, match ? "match" : "DIVERGE");
    json.NewRecord()
        .Set("workload", "points_to")
        .Set("impl", "legacy")
        .Set("seconds", legacy.seconds)
        .Set("fixpoint", static_cast<uint64_t>(legacy.fixpoint_size))
        .Set("rounds", legacy.rounds);
    json.NewRecord()
        .Set("workload", "points_to")
        .Set("impl", "flat")
        .Set("seconds", flat.seconds)
        .Set("fixpoint", static_cast<uint64_t>(flat.fixpoint_size))
        .Set("rounds", flat.rounds);
    json.NewRecord()
        .Set("workload", "points_to")
        .Set("speedup", speedup)
        .Set("fixpoints_match", match);
  }

  for (SirupWorkload& w : workloads) {
    constexpr int kReps = 3;
    RunResult legacy, flat;
    for (int rep = 0; rep < kReps; ++rep) {
      RunResult l = RunLegacy(w), f = RunFlat(w);
      if (rep == 0 || l.seconds < legacy.seconds) legacy = l;
      if (rep == 0 || f.seconds < flat.seconds) flat = f;
    }
    bool match = legacy.fixpoint_size == flat.fixpoint_size &&
                 legacy.rounds == flat.rounds;
    all_match = all_match && match;
    double speedup = flat.seconds > 0 ? legacy.seconds / flat.seconds : 0;
    min_speedup = std::min(min_speedup, speedup);
    total_batch_probes += flat.batch_probes;
    std::printf(
        "%s: fixpoint=%zu rounds=%d  legacy %.3fs  flat %.3fs  "
        "speedup %.2fx  fixpoints %s\n",
        w.name.c_str(), flat.fixpoint_size, flat.rounds, legacy.seconds,
        flat.seconds, speedup, match ? "match" : "DIVERGE");
    json.NewRecord()
        .Set("workload", w.name)
        .Set("impl", "legacy")
        .Set("seconds", legacy.seconds)
        .Set("fixpoint", static_cast<uint64_t>(legacy.fixpoint_size))
        .Set("rounds", legacy.rounds);
    json.NewRecord()
        .Set("workload", w.name)
        .Set("impl", "flat")
        .Set("seconds", flat.seconds)
        .Set("fixpoint", static_cast<uint64_t>(flat.fixpoint_size))
        .Set("rounds", flat.rounds);
    json.NewRecord()
        .Set("workload", w.name)
        .Set("speedup", speedup)
        .Set("fixpoints_match", match);
  }

  // Routing throughput at P=4 over a replayed stream of derived
  // tuples, in two configurations: the ancestor Example 3 rewrite's own
  // sending rules (one determined spec — the minimum work any router
  // can do) and a multi-receiver mix (two determined specs with
  // different hashes plus an undetermined broadcast spec, the shape
  // Example 2 produces).
  {
    bench::AncestorHarness h;
    constexpr int P = 4;
    StatusOr<RewriteBundle> bundle =
        RewriteLinearSirup(h.program, h.info, h.sirup, P, h.Example3(P));
    if (!bundle.ok()) bench::AncestorHarness::Die("rewrite", bundle.status());
    DiscriminatingRegistry& registry = *bundle->registry;

    std::vector<SendSpec> mixed = bundle->sends[0];
    if (!mixed.empty()) {
      SendSpec second = mixed[0];
      second.function =
          registry.Register(DiscriminatingFunction::UniformHash(P, 0xfeed));
      mixed.push_back(second);
      SendSpec broadcast = mixed[0];
      broadcast.determined = false;
      broadcast.var_positions.clear();
      mixed.push_back(broadcast);
    }

    constexpr int kTuples = 2000000;
    std::vector<Tuple> stream;
    stream.reserve(kTuples);
    for (int i = 0; i < kTuples; ++i) {
      stream.push_back(Tuple{static_cast<Value>(i % 997),
                             static_cast<Value>(i % 1013)});
    }

    struct RoutingConfig {
      const char* name;
      const std::vector<SendSpec>* specs;
    };
    for (const RoutingConfig& config :
         {RoutingConfig{"routing_p4", &bundle->sends[0]},
          RoutingConfig{"routing_p4_mixed", &mixed}}) {
      const std::vector<SendSpec>& specs = *config.specs;
      Symbol pred = specs.empty() ? h.anc() : specs[0].predicate;

      std::vector<int> dests;
      uint64_t legacy_sink = 0, flat_sink = 0;
      Stopwatch legacy_timer;
      for (const Tuple& t : stream) {
        dests.clear();
        LegacyRoute(specs, registry, P, t, &dests);
        for (int d : dests) legacy_sink += static_cast<uint64_t>(d) + 1;
      }
      double legacy_s = legacy_timer.ElapsedSeconds();

      TupleRouter router(specs, P, &registry);
      Stopwatch flat_timer;
      for (const Tuple& t : stream) {
        dests.clear();
        router.Route(pred, t, &dests);
        for (int d : dests) flat_sink += static_cast<uint64_t>(d) + 1;
      }
      double flat_s = flat_timer.ElapsedSeconds();

      bool match = legacy_sink == flat_sink;
      all_match = all_match && match;
      double speedup = flat_s > 0 ? legacy_s / flat_s : 0;
      std::printf(
          "%s(P=%d, %d tuples, %zu specs): legacy %.3fs  flat %.3fs  "
          "speedup %.2fx  destinations %s\n",
          config.name, P, kTuples, specs.size(), legacy_s, flat_s, speedup,
          match ? "match" : "DIVERGE");
      json.NewRecord()
          .Set("workload", config.name)
          .Set("impl", "legacy")
          .Set("seconds", legacy_s)
          .Set("tuples", static_cast<uint64_t>(kTuples));
      json.NewRecord()
          .Set("workload", config.name)
          .Set("impl", "flat")
          .Set("seconds", flat_s)
          .Set("tuples", static_cast<uint64_t>(kTuples));
      json.NewRecord()
          .Set("workload", config.name)
          .Set("speedup", speedup)
          .Set("destinations_match", match);
    }
  }

  json.NewRecord()
      .Set("workload", "summary")
      .Set("min_join_speedup", min_speedup)
      .Set("target_speedup", 2.0)
      .Set("batch_kernel", total_batch_probes > 0)
      .Set("batch_probes", total_batch_probes)
      .Set("all_fixpoints_match", all_match);
  json.WriteFile();

  std::printf("\nmin join-path speedup: %.2fx (target 2.0x)\n", min_speedup);
  if (!all_match) {
    std::fprintf(stderr, "FAIL: fixpoints diverged between substrates\n");
    return 1;
  }
  return 0;
}
