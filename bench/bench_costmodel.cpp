// EXP-10: the architecture study the paper defers (Section 8): which
// scheme should a compiler pick for a given comm/compute cost ratio?
//
// Every scheme's execution is replayed through the BSP cost model
// (core/cost_model.h) while the per-message cost sweeps from free to
// 16x a firing. Deterministic round-robin scheduling keeps the round
// structure reproducible.
#include <cstdio>

#include "bench_util.h"
#include "core/cost_model.h"

using namespace pdatalog;
using bench::AncestorHarness;

namespace {

struct SchemeRun {
  std::string name;
  std::vector<std::vector<RoundLog>> rounds;
};

ParallelResult RunDeterministic(AncestorHarness* h, const Database& base,
                                const LinearSchemeOptions& options, int P) {
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(h->program, h->info, h->sirup, P, options);
  if (!bundle.ok()) AncestorHarness::Die("rewrite", bundle.status());
  Database edb = h->CloneEdb(base);
  ParallelOptions popts;
  popts.use_threads = false;
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, popts);
  if (!result.ok()) AncestorHarness::Die("run", result.status());
  return std::move(*result);
}

ParallelResult RunTradeoffDeterministic(AncestorHarness* h,
                                        const Database& base, double rho,
                                        int P) {
  TradeoffOptions options;
  options.v_r = {h->Var("Z")};
  options.v_e = {h->Var("X")};
  options.h_prime = DiscriminatingFunction::UniformHash(P);
  for (int i = 0; i < P; ++i) {
    options.h_i.push_back(DiscriminatingFunction::KeepOrHash(i, rho, P));
  }
  StatusOr<RewriteBundle> bundle =
      RewriteTradeoff(h->program, h->info, h->sirup, P, options);
  if (!bundle.ok()) AncestorHarness::Die("rewrite", bundle.status());
  Database edb = h->CloneEdb(base);
  ParallelOptions popts;
  popts.use_threads = false;
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb, popts);
  if (!result.ok()) AncestorHarness::Die("run", result.status());
  return std::move(*result);
}

}  // namespace

int main() {
  std::printf(
      "EXP-10: BSP cost-model sweep — scheme choice vs communication\n"
      "cost (Section 8: \"the particular scheme used in a compiler may\n"
      "be dependent on the underlying characteristics of the\n"
      "architecture\").\n\n");

  const int P = 4;
  for (const char* topology : {"random", "grid"}) {
    AncestorHarness h;
    Database base;
    size_t edges =
        bench::GenerateTopology(topology, &h.symbols, &base, "par", 21);
    EvalStats seq = h.RunSequential(base);
    std::printf("topology=%s edges=%zu N=%d  sequential work: %llu\n",
                topology, edges, P,
                static_cast<unsigned long long>(seq.firings));

    std::vector<SchemeRun> runs;
    runs.push_back(
        {"example1", RunDeterministic(&h, base, h.Example1(P), P)
                         .worker_rounds});
    runs.push_back(
        {"example2",
         RunDeterministic(&h, base, h.Example2(base, P), P).worker_rounds});
    runs.push_back(
        {"example3", RunDeterministic(&h, base, h.Example3(P), P)
                         .worker_rounds});
    runs.push_back(
        {"tradeoff(0.5)",
         RunTradeoffDeterministic(&h, base, 0.5, P).worker_rounds});
    runs.push_back(
        {"tradeoff(1.0)",
         RunTradeoffDeterministic(&h, base, 1.0, P).worker_rounds});

    std::vector<std::string> header = {"net/cpu"};
    for (const SchemeRun& run : runs) header.push_back(run.name);
    header.push_back("winner");
    TextTable table(header);

    for (double net : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
      CostParams params;
      params.cpu_per_firing = 1.0;
      params.net_per_message = net;
      std::vector<std::string> row = {TextTable::Cell(net, 2)};
      double best = -1;
      std::string winner;
      for (const SchemeRun& run : runs) {
        double makespan = BspCost(run.rounds, params).makespan;
        row.push_back(TextTable::Cell(makespan, 0));
        if (best < 0 || makespan < best) {
          best = makespan;
          winner = run.name;
        }
      }
      row.push_back(winner);
      table.AddRow(std::move(row));
    }
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "reading guide: example1 dominates whenever it applies — it\n"
      "needs a cyclic dataflow graph and a replicable base relation;\n"
      "its cost is storage, which a time model does not charge. When\n"
      "those preconditions fail, the choice is example3 vs the Section 6\n"
      "spectrum: example3 (non-redundant) wins while communication is\n"
      "cheap, and the redundant-but-silent tradeoff(1.0) overtakes it as\n"
      "the per-message cost grows — the compile-time, architecture-\n"
      "dependent decision Section 8 anticipates. example2's broadcasts\n"
      "are dominated at every positive cost ratio.\n");
  return 0;
}
