// FIG-3 / FIG-4: regenerates the paper's Figures 3 and 4 — the minimal
// network graphs of Examples 6 and 7 — by solving the 0/1 systems of
// Section 5, then validates them dynamically: an actual parallel run
// must use only derived channels.
#include <cstdio>

#include "bench_util.h"

using namespace pdatalog;

namespace {

void ShowNetwork(const char* figure, const char* source,
                 const std::vector<std::string>& v_r_names,
                 const std::vector<std::string>& v_e_names,
                 const std::vector<int>& coeffs, const char* paper_note) {
  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(source, &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(*program, info);

  std::vector<Symbol> v_r, v_e;
  for (const auto& n : v_r_names) v_r.push_back(symbols.Intern(n));
  for (const auto& n : v_e_names) v_e.push_back(symbols.Intern(n));

  StatusOr<NetworkGraph> network =
      DeriveNetworkGraph(*sirup, v_r, v_e, coeffs, coeffs);
  if (!network.ok()) {
    std::fprintf(stderr, "%s\n", network.status().ToString().c_str());
    std::exit(1);
  }

  std::printf("--- %s ---\n", figure);
  std::printf("rule: %s\n", ToString(sirup->rec, symbols).c_str());
  std::printf("measured minimal network graph (raw h values):\n%s",
              network->ToString().c_str());
  std::printf("recursive-production edges: %zu, exit-production edges "
              "(all self): %zu\n",
              network->rec_edges.size(), network->exit_edges.size());
  std::printf("paper: %s\n\n", paper_note);
}

// Dynamic validation for Example 6: run the engine with the linear h
// and confirm the observed channel traffic respects the derived graph.
void ValidateExample6Dynamically() {
  SymbolTable symbols;
  StatusOr<Program> program = ParseProgram(
      "p(X, Y) :- q(X, Y).\n"
      "p(X, Y) :- p(Y, Z), r(X, Z).\n",
      &symbols);
  ProgramInfo info;
  (void)Validate(*program, &info);
  StatusOr<LinearSirup> sirup = ExtractLinearSirup(*program, info);

  std::vector<Symbol> v_r = {symbols.Intern("Y"), symbols.Intern("Z")};
  std::vector<Symbol> v_e = {symbols.Intern("X"), symbols.Intern("Y")};
  StatusOr<NetworkGraph> network =
      DeriveNetworkGraph(*sirup, v_r, v_e, {2, 1}, {2, 1});

  LinearSchemeOptions options;
  options.v_r = v_r;
  options.v_e = v_e;
  options.h = WithDenseRemap(DiscriminatingFunction::Linear({2, 1}));
  StatusOr<RewriteBundle> bundle =
      RewriteLinearSirup(*program, info, *sirup, 4, options);

  Database edb;
  GenRandomGraph(&symbols, &edb, "q", 20, 70, 31);
  GenRandomGraph(&symbols, &edb, "r", 20, 70, 32);
  StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    std::exit(1);
  }

  std::printf("--- dynamic validation of Figure 3 ---\n");
  std::printf("channel traffic on a random database (rows: from, cols: "
              "to; * = channel not in the derived graph):\n");
  int violations = 0;
  int used_edges = 0;
  for (int i = 0; i < 4; ++i) {
    std::printf("  p%d:", i);
    for (int j = 0; j < 4; ++j) {
      uint64_t n = result->channel_matrix[i][j];
      bool allowed = network->HasEdge(i, j);
      if (n > 0 && !allowed) ++violations;
      if (n > 0 && allowed) ++used_edges;
      std::printf(" %6llu%s", static_cast<unsigned long long>(n),
                  allowed ? " " : "*");
    }
    std::printf("\n");
  }
  std::printf("channels used: %d, traffic outside the derived graph: %d "
              "(must be 0)\n\n",
              used_edges, violations);
}

}  // namespace

int main() {
  std::printf("Reproduction of Figures 3 and 4 (Section 5).\n\n");

  ShowNetwork(
      "Figure 3 (Example 6)",
      "p(X, Y) :- q(X, Y).\n"
      "p(X, Y) :- p(Y, Z), r(X, Z).\n",
      {"Y", "Z"}, {"X", "Y"}, {2, 1},
      "processors {(00),(01),(10),(11)} as {0,1,2,3}; i -> j iff the "
      "second bit of j equals the first bit of i (e.g. (00) never sends "
      "to (01) or (11), possibly to (10))");

  ShowNetwork(
      "Figure 4 (Example 7)",
      "p(U, V, W) :- s(U, V, W).\n"
      "p(U, V, W) :- p(V, W, Z), q(U, Z).\n",
      {"V", "W", "Z"}, {"U", "V", "W"}, {1, -1, 1},
      "P = {0, 1, -1, 2}; edges u -> v are the solutions of "
      "x1-x2+x3 = v, x2-x3+x4 = u over x in {0,1}^4; exit production "
      "only yields i = j (equations (1)-(2))");

  ValidateExample6Dynamically();
  return 0;
}
