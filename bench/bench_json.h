// Machine-readable benchmark records. Each harness that wants its
// results archived builds a BenchJson, appends flat records, and writes
// `BENCH_<name>.json` into the working directory, so CI and EXPERIMENTS
// tooling can diff runs without scraping the human-facing tables.
#ifndef PDATALOG_BENCH_BENCH_JSON_H_
#define PDATALOG_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace pdatalog {
namespace bench {

// One flat record: ordered (key, literal) pairs. Values are stored
// pre-rendered as JSON literals (quoted strings or bare numbers).
class JsonRecord {
 public:
  JsonRecord& Set(const std::string& key, const std::string& value);
  JsonRecord& Set(const std::string& key, const char* value);
  JsonRecord& Set(const std::string& key, double value);
  JsonRecord& Set(const std::string& key, uint64_t value);
  JsonRecord& Set(const std::string& key, int value);
  JsonRecord& Set(const std::string& key, bool value);

  std::string ToString() const;

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

// A named collection of records: {"bench": <name>, "records": [...]}.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}

  JsonRecord& NewRecord();

  std::string ToString() const;

  // Writes BENCH_<name>.json into `dir` (default: working directory).
  // Returns true on success; failures are reported on stderr and must
  // not fail the bench run itself.
  bool WriteFile(const std::string& dir = ".") const;

 private:
  std::string name_;
  std::vector<JsonRecord> records_;
};

}  // namespace bench
}  // namespace pdatalog

#endif  // PDATALOG_BENCH_BENCH_JSON_H_
