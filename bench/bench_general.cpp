// EXP-6: the general scheme of Section 7 on non-linear and
// multi-predicate programs (Example 8's non-linear ancestor, the classic
// same-generation program, and a mutually recursive pair), checking
// Theorems 5 and 6 on each.
#include <cstdio>

#include "bench_util.h"

using namespace pdatalog;

namespace {

struct GeneralCase {
  const char* name;
  const char* source;
  // Per rule: discriminating variable name ("" = unconstrained).
  std::vector<const char*> rule_vars;
  // Fills both the sequential and parallel databases identically.
  void (*fill)(SymbolTable*, Database*);
};

void FillParRandom(SymbolTable* symbols, Database* db) {
  GenRandomGraph(symbols, db, "par", 80, 200, 5);
}

void FillSameGen(SymbolTable* symbols, Database* db) {
  GenFlat(symbols, db, "up", 120, 30, 9);
  // flat pairs live in the parent space so the recursive rule's join
  // (up o sg o down) actually fires.
  SplitMix64 flat_rng(10);
  Relation& flat = db->GetOrCreate(symbols->Intern("flat"), 2);
  for (int i = 0; i < 40; ++i) {
    Value a = symbols->Intern("p" + std::to_string(flat_rng.NextBelow(30)));
    Value b = symbols->Intern("p" + std::to_string(flat_rng.NextBelow(30)));
    flat.Insert(Tuple{a, b});
  }
  SplitMix64 rng(11);
  Relation& down = db->GetOrCreate(symbols->Intern("down"), 2);
  for (int i = 0; i < 120; ++i) {
    Value parent = symbols->Intern("p" + std::to_string(rng.NextBelow(30)));
    Value child = symbols->Intern("c" + std::to_string(rng.NextBelow(120)));
    down.Insert(Tuple{parent, child});
  }
}

void FillEvenOdd(SymbolTable* symbols, Database* db) {
  GenRandomGraph(symbols, db, "edge", 60, 120, 13);
  db->Insert(symbols->Intern("zero"), Tuple{symbols->Intern("n0")}, 1);
}

}  // namespace

int main() {
  std::printf(
      "EXP-6: Section 7 general scheme on non-linear programs.\n"
      "paper: for every Datalog program the rewritten T_i compute the\n"
      "same least model (Theorem 5) with no more firings than sequential\n"
      "semi-naive (Theorem 6).\n\n");

  std::vector<GeneralCase> cases = {
      {"nonlinear-ancestor (Example 8)",
       "anc(X, Y) :- par(X, Y).\n"
       "anc(X, Y) :- anc(X, Z), anc(Z, Y).\n",
       {"Y", "Z"},
       &FillParRandom},
      {"same-generation",
       "sg(X, Y) :- flat(X, Y).\n"
       "sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n",
       {"Y", "V"},
       &FillSameGen},
      {"mutual-recursion (even/odd)",
       "even(X) :- zero(X).\n"
       "even(Y) :- odd(X), edge(X, Y).\n"
       "odd(Y) :- even(X), edge(X, Y).\n",
       {"X", "Y", "Y"},
       &FillEvenOdd},
  };

  TextTable table({"program", "N", "seq firings", "par firings",
                   "cross-msgs", "output tuples", "correct"});

  for (const GeneralCase& c : cases) {
    for (int P : {2, 4, 8}) {
      SymbolTable symbols;
      StatusOr<Program> program = ParseProgram(c.source, &symbols);
      ProgramInfo info;
      (void)Validate(*program, &info);

      Database seq_db;
      c.fill(&symbols, &seq_db);
      EvalStats seq;
      (void)SemiNaiveEvaluate(*program, info, &seq_db, &seq);

      std::vector<GeneralRuleSpec> specs(program->rules.size());
      for (size_t r = 0; r < specs.size(); ++r) {
        specs[r].vars = {symbols.Intern(c.rule_vars[r])};
        specs[r].h = DiscriminatingFunction::UniformHash(P);
      }
      StatusOr<RewriteBundle> bundle =
          RewriteGeneral(*program, info, P, specs);
      if (!bundle.ok()) {
        std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
        return 1;
      }

      Database edb;
      c.fill(&symbols, &edb);
      StatusOr<ParallelResult> result = RunParallel(*bundle, &edb);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }

      bool correct = true;
      uint64_t output_tuples = 0;
      for (Symbol p : bundle->derived) {
        const Relation* pooled = result->output.Find(p);
        const Relation* expected = seq_db.Find(p);
        output_tuples += pooled->size();
        if (pooled->ToSortedString(symbols) !=
            expected->ToSortedString(symbols)) {
          correct = false;
        }
      }

      table.AddRow({c.name, TextTable::Cell(P),
                    TextTable::Cell(seq.firings),
                    TextTable::Cell(result->total_firings),
                    TextTable::Cell(result->cross_tuples),
                    TextTable::Cell(output_tuples),
                    correct && result->total_firings <= seq.firings
                        ? "yes"
                        : "NO"});
    }
  }

  table.Print();
  std::printf("\nreading guide: correct = least model matches sequential\n"
              "AND Theorem 6's firing bound holds, at every N.\n");
  return 0;
}
